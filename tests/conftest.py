"""Shared fixtures for the repro test suite.

``REPRO_BACKEND=array`` (or ``reference``) reruns the suite with the
shared fixtures on that cache kernel backend — the CI matrix uses this to
prove the whole pipeline, golden outputs included, is backend-agnostic.
Tests that pin a backend explicitly (the differential harness, the unit
tests of one kernel) are unaffected.

``REPRO_MRC_SAMPLE_RATE`` (a fraction in (0, 1], default 0.25) scales
the stream lengths the MRC accuracy harness (``tests/mrc/``, marker
``mrc``) feeds both the MRC engine and the verifying simulator — the
same truncation on both sides, so bit-for-bit comparisons stay exact
at any rate. The quick tier-1 run keeps the default; CI sets 1.0 to
score the full streams.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cache import CacheConfig, SetAssociativeCache
from repro.memory import AddressSpace, HeapAllocator, ObjectMap, SymbolTable
from repro.sim.engine import Simulator

#: Backend override for shared fixtures; None = the configs' default.
ENV_BACKEND = os.environ.get("REPRO_BACKEND") or None

#: Fraction of each workload's stream the MRC accuracy harness consumes.
MRC_SAMPLE_RATE = min(
    1.0, max(0.01, float(os.environ.get("REPRO_MRC_SAMPLE_RATE", "0.25")))
)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "mrc: MRC-vs-exact-simulator accuracy harness (stream length "
        "scaled by REPRO_MRC_SAMPLE_RATE)",
    )
    config.addinivalue_line(
        "markers",
        "mechanisms: cache-mechanism component stacks (victim/miss "
        "cache, stream buffers) — the CI leg `-m mechanisms` runs just "
        "these",
    )
    config.addinivalue_line(
        "markers",
        "multicore: shared-LLC multi-core sessions and contention "
        "attribution — the CI leg `-m multicore` runs just these",
    )


@pytest.fixture
def aspace() -> AddressSpace:
    return AddressSpace()


@pytest.fixture
def small_cfg() -> CacheConfig:
    """A small cache so tests can exercise capacity effects cheaply."""
    return CacheConfig(size=16 * 1024, line_size=64, assoc=4)


@pytest.fixture
def small_cache(small_cfg) -> SetAssociativeCache:
    return SetAssociativeCache(small_cfg, backend=ENV_BACKEND)


@pytest.fixture
def sim() -> Simulator:
    return Simulator(
        CacheConfig(size=64 * 1024, assoc=4), seed=7, backend=ENV_BACKEND
    )


@pytest.fixture
def populated_map(aspace):
    """An object map with three globals and two heap blocks."""
    symbols = SymbolTable(aspace.data)
    a = symbols.declare("A", 4096)
    b = symbols.declare("B", 8192)
    c = symbols.declare("C", 4096, pad_after=65536)
    omap = ObjectMap()
    omap.add_globals([a, b, c])
    omap.freeze_globals()
    heap = HeapAllocator(aspace.heap)
    heap.add_observer(omap.observe_alloc)
    h1 = heap.malloc(16384)
    h2 = heap.malloc(4096)
    return omap, {"A": a, "B": b, "C": c, "h1": h1, "h2": h2}, heap


def lines(obj, n, line=64, start=0):
    """Line-stride addresses over an object (test helper)."""
    base = obj.base + start * line
    return np.arange(base, base + n * line, line, dtype=np.uint64)


@pytest.fixture(scope="session")
def mrc_sample_fraction() -> float:
    """Stream-length fraction for the MRC harness (env-tunable)."""
    return MRC_SAMPLE_RATE


@pytest.fixture(scope="session")
def quick_runner():
    """A shared quick-mode experiment runner (baselines cached)."""
    from repro.experiments.runner import ExperimentRunner, RunnerConfig

    return ExperimentRunner(
        RunnerConfig(seed=99, backend=ENV_BACKEND), quick=True
    )
