"""SHARDS spatial sampling: determinism, rate behaviour, rescaling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.mrc import COLD, MrcError, sample_mask, scale_distances


class TestSampleMask:
    def test_deterministic_under_fixed_seed(self):
        codes = np.arange(50_000, dtype=np.uint64)
        a = sample_mask(codes, 0.1, seed=42)
        b = sample_mask(codes, 0.1, seed=42)
        assert np.array_equal(a, b)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31), st.sampled_from([0.05, 0.2, 0.5]))
    def test_deterministic_property(self, seed, rate):
        codes = np.arange(2000, dtype=np.uint64)
        assert np.array_equal(
            sample_mask(codes, rate, seed), sample_mask(codes, rate, seed)
        )

    def test_different_seeds_differ(self):
        codes = np.arange(50_000, dtype=np.uint64)
        assert not np.array_equal(
            sample_mask(codes, 0.1, seed=1), sample_mask(codes, 0.1, seed=2)
        )

    def test_spatial_same_line_same_fate(self):
        codes = np.array([7, 3, 7, 9, 3, 7], dtype=np.uint64)
        mask = sample_mask(codes, 0.5, seed=0)
        for line in (3, 7, 9):
            fates = mask[codes == line]
            assert fates.all() or not fates.any()

    def test_rate_one_keeps_everything(self):
        assert sample_mask(np.arange(10, dtype=np.uint64), 1.0, 0).all()

    def test_rate_statistically_plausible(self):
        codes = np.arange(200_000, dtype=np.uint64)
        frac = sample_mask(codes, 0.1, seed=9).mean()
        assert 0.08 < frac < 0.12

    def test_rejects_bad_rate(self):
        codes = np.arange(4, dtype=np.uint64)
        for rate in (0.0, -1.0, 1.5):
            with pytest.raises(MrcError, match="rate"):
                sample_mask(codes, rate, 0)


class TestScaleDistances:
    def test_scales_finite_and_keeps_cold(self):
        d = np.array([COLD, 0, 5, 10])
        scaled = scale_distances(d, 0.1)
        assert scaled.tolist() == [COLD, 0, 50, 100]

    def test_rate_one_is_identity(self):
        d = np.array([COLD, 3, 7])
        assert scale_distances(d, 1.0).tolist() == d.tolist()

    def test_rejects_bad_rate(self):
        with pytest.raises(MrcError, match="rate"):
            scale_distances(np.array([1]), 0.0)
