"""MRC experiment wiring: runner tasks, warm grid mode, driver output."""

import pytest

from repro.experiments.mrc import run_mrc, verification_cells


class TestMrcTask:
    def test_resizes_cache_in_key(self, quick_runner):
        a = quick_runner.mrc_task("mgrid", size=64 * 1024, max_refs=1000)
        b = quick_runner.mrc_task("mgrid", size=128 * 1024, max_refs=1000)
        same = quick_runner.mrc_task("mgrid", size=64 * 1024, max_refs=1000)
        assert a.key() != b.key()
        assert a.key() == same.key()
        assert a.sim.cache.size == 64 * 1024
        assert a.sim.cache.assoc == quick_runner.config.cache.assoc

    def test_default_size_is_runner_geometry(self, quick_runner):
        spec = quick_runner.mrc_task("ijpeg")
        assert spec.sim.cache == quick_runner.config.cache


class TestVerificationCells:
    def test_deterministic_and_sized(self, quick_runner):
        cells = verification_cells(
            quick_runner, "mgrid", sample_refs=100_000, verify_cells=2
        )
        again = verification_cells(
            quick_runner, "mgrid", sample_refs=100_000, verify_cells=2
        )
        assert [s for s, _ in cells] == [s for s, _ in again]
        assert [spec.key() for _, spec in cells] == [
            spec.key() for _, spec in again
        ]
        assert len(cells) == 2


class TestWarmMrcGrid:
    def test_warm_precomputes_the_drivers_cells(self, tmp_path):
        from repro.experiments.runner import ExperimentRunner, RunnerConfig

        runner = ExperimentRunner(
            RunnerConfig(seed=99), quick=True, cache_dir=tmp_path / "grid"
        )
        runner.warm(apps=["mgrid"], experiments=["mrc"], jobs=1)
        cells = verification_cells(runner, "mgrid")
        assert cells
        for _size, spec in cells:
            assert spec.key() in runner._memo


class TestRunMrcDriver:
    def test_report_shape_and_verified_cells(self, quick_runner):
        report = run_mrc(
            quick_runner, apps=["mgrid", "ijpeg"], sample_refs=150_000
        )
        sizes = report.values["sizes"]
        assert len(sizes) >= 8
        for app in ("mgrid", "ijpeg"):
            assert set(report.values[app]) == set(sizes)
            checks = report.values["verify"][app]
            assert len(checks) == 2
            for size, pair in checks.items():
                assert size in sizes
                assert pair["predicted"] == report.values[app][size]
                # Prediction within 2% absolute of the exact simulator.
                assert pair["predicted"] == pytest.approx(
                    pair["simulated"], abs=0.02
                )

    def test_exact_mode(self, quick_runner):
        report = run_mrc(
            quick_runner,
            apps=["mgrid"],
            sizes=[64 * 1024, 256 * 1024, 1 << 20],
            sample_refs=60_000,
            mode="exact",
            verify_cells=1,
        )
        assert report.values["mode"] == "exact"
        assert len(report.values["verify"]["mgrid"]) == 1
