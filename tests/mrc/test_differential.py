"""Differential accuracy harness: MRC predictions vs the exact simulator.

Every registry workload is scored two ways:

* **bit-for-bit** — the exact Mattson pass must reproduce the
  fully-associative LRU simulator's miss *counts* exactly at six cache
  sizes (the repo's unique asset: the simulator is ground truth, so the
  MRC engine ships pinned to it, not to itself);
* **budgeted** — the SHARDS-sampled pass must stay within a per-workload
  absolute miss-ratio budget of the exact pass across eight sizes.
  Budgets are calibrated at ~2x the worst error observed at stream
  fractions 0.1 and 1.0 (see DESIGN.md section 10); a regression that
  blows one fails this suite.

``REPRO_MRC_SAMPLE_RATE`` scales how much of each stream both the MRC
pass and the simulator consume — the same truncation on both sides, so
the bit-for-bit property holds at any setting. Streams are compiled once
per workload and shared across cases.
"""

import numpy as np
import pytest

from repro.cache import CacheConfig
from repro.cache.mrc import build_mrc
from repro.hpm.interrupts import CostModel
from repro.sim.engine import Simulator
from repro.workloads.compile import compiled_stream_for
from repro.workloads.registry import make_workload, workload_names

from tests.conftest import ENV_BACKEND

pytestmark = pytest.mark.mrc

SEED = 99

#: Quick-mode workload kwargs (mirrors the runner's quick grid).
QUICK_KWARGS = {
    "tomcatv": {"n_steps": 4, "rows_per_step": 16},
    "swim": {"n_steps": 4, "lines_per_array_per_step": 1600},
    "su2cor": {"total_lines": 160_000, "slices_per_era": 24},
    "mgrid": {"n_vcycles": 4, "fine_lines": 9_000},
    "applu": {"n_iterations": 7, "jacobian_lines": 4_500},
    "compress": {"input_lines": 30_000},
    "ijpeg": {"image_lines": 20_000},
}

#: Fully-associative sizes for the bit-for-bit comparison (>= 6).
EXACT_SIZES = [4096, 8192, 16384, 32768, 65536, 131072]

#: Sizes the SHARDS budget is scored over.
SHARDS_SIZES = EXACT_SIZES + [262144, 1 << 20]

#: Per-workload |miss-ratio| budgets for SHARDS at rate 0.1, seed 99.
SHARDS_BUDGETS = {
    "tomcatv": 0.035,
    "swim": 0.055,
    "su2cor": 0.030,
    "mgrid": 0.005,
    "applu": 0.025,
    "compress": 0.010,
    "ijpeg": 0.030,
}

#: Stream-length cap before the env fraction applies, keeping the
#: heaviest case (fully-assoc simulation at 128 KiB) bounded.
MAX_BASE_REFS = 600_000


def _quick(app):
    return make_workload(app, seed=SEED, **QUICK_KWARGS[app])


@pytest.fixture(scope="module")
def streams():
    """Compiled stream per registry workload (compiled once, shared)."""
    return {app: compiled_stream_for(_quick(app), None) for app in workload_names()}


def _n_refs(compiled, fraction):
    return max(20_000, int(min(compiled.n_refs, MAX_BASE_REFS) * fraction))


def test_registry_is_fully_covered():
    assert set(workload_names()) == set(QUICK_KWARGS) == set(SHARDS_BUDGETS)


@pytest.mark.parametrize("app", sorted(QUICK_KWARGS))
def test_exact_pass_bit_for_bit_vs_simulator(app, streams, mrc_sample_fraction):
    compiled = streams[app]
    n = _n_refs(compiled, mrc_sample_fraction)
    result = build_mrc(_quick(app), compiled=compiled, mode="exact", max_refs=n)
    for size in EXACT_SIZES:
        cfg = CacheConfig(
            size=size,
            line_size=64,
            assoc=size // 64,  # one set: fully associative LRU
            backend=ENV_BACKEND or "array",
        )
        sim = Simulator(cache_config=cfg, cost_model=CostModel(), seed=SEED)
        run = sim.run(_quick(app), max_refs=n, ground_truth=False)
        assert run.stats.app_refs == result.n_refs
        assert int(round(result.misses(size))) == run.stats.app_misses, (
            f"{app} @ {size}: exact Mattson pass diverged from the "
            "fully-associative LRU simulator"
        )


@pytest.mark.parametrize("app", sorted(QUICK_KWARGS))
def test_shards_within_per_workload_budget(app, streams, mrc_sample_fraction):
    compiled = streams[app]
    n = _n_refs(compiled, mrc_sample_fraction)
    exact = build_mrc(_quick(app), compiled=compiled, mode="exact", max_refs=n)
    shards = build_mrc(
        _quick(app), compiled=compiled, mode="shards",
        sample_rate=0.1, seed=SEED, max_refs=n,
    )
    budget = SHARDS_BUDGETS[app]
    for size in SHARDS_SIZES:
        err = abs(shards.miss_ratio(size) - exact.miss_ratio(size))
        assert err <= budget, (
            f"{app} @ {size}: SHARDS error {err:.4f} exceeds the "
            f"{budget:.3f} budget"
        )


@pytest.mark.parametrize("app", ["mgrid", "ijpeg"])
def test_per_object_shares_track_ground_truth(app, streams, mrc_sample_fraction):
    """Exact per-object miss decomposition vs GroundTruth attribution."""
    compiled = streams[app]
    n = _n_refs(compiled, mrc_sample_fraction)
    size = 65536
    result = build_mrc(_quick(app), compiled=compiled, mode="exact", max_refs=n)
    cfg = CacheConfig(size=size, line_size=64, assoc=size // 64, backend="array")
    sim = Simulator(cache_config=cfg, cost_model=CostModel(), seed=SEED)
    run = sim.run(_quick(app), max_refs=n, ground_truth=True)
    truth = {o.name: c for o, c in run.ground_truth.ranked()}
    predicted = {
        name: int(round(result.misses(size, name=name)))
        for name in result.object_names()
    }
    # Totals are bit-for-bit; per-object counts match exactly too (same
    # static object map, same miss set), modulo refs neither attributes.
    assert int(round(result.misses(size))) == run.stats.app_misses
    for name, count in truth.items():
        assert predicted.get(name, 0) == count, (
            f"{app}: object {name!r} predicted {predicted.get(name, 0)} "
            f"misses, ground truth saw {count}"
        )
