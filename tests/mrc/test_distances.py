"""Stack-distance pass: both backends against a brute-force oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.mrc import (
    COLD,
    DISTANCE_BACKENDS,
    MrcError,
    lines_of,
    prefix_rank_leq,
    previous_occurrence,
    reuse_distances,
    self_rank_leq,
)

streams = st.lists(st.integers(0, 14), min_size=0, max_size=150)


def naive_distances(lines):
    """LRU stack simulation, the semantic definition of stack distance."""
    out, stack = [], []
    for line in lines:
        if line in stack:
            depth = stack.index(line)
            out.append(depth)
            stack.pop(depth)
        else:
            out.append(COLD)
        stack.insert(0, line)
    return out


class TestReuseDistances:
    def test_known_sequence(self):
        # a b c b a: b reused over {c}, a over {b, c}.
        d = reuse_distances(np.array([10, 11, 12, 11, 10]))
        assert d.tolist() == [COLD, COLD, COLD, 1, 2]

    def test_empty(self):
        for backend in DISTANCE_BACKENDS:
            assert len(reuse_distances(np.array([], dtype=np.int64), backend)) == 0

    @pytest.mark.parametrize("backend", DISTANCE_BACKENDS)
    @settings(max_examples=60, deadline=None)
    @given(streams)
    def test_every_backend_matches_stack_oracle(self, backend, lines):
        got = reuse_distances(np.asarray(lines, dtype=np.int64), backend)
        assert got.tolist() == naive_distances(lines)

    @settings(max_examples=60, deadline=None)
    @given(streams)
    def test_backends_bit_identical(self, lines):
        codes = np.asarray(lines, dtype=np.int64)
        results = [
            reuse_distances(codes, backend).tolist()
            for backend in DISTANCE_BACKENDS
        ]
        assert all(r == results[0] for r in results[1:])

    def test_backends_bit_identical_large_random(self):
        rng = np.random.default_rng(3)
        codes = rng.integers(0, 5000, 60_000)
        baseline = reuse_distances(codes, DISTANCE_BACKENDS[0])
        for backend in DISTANCE_BACKENDS[1:]:
            assert np.array_equal(baseline, reuse_distances(codes, backend))

    def test_rejects_unknown_backend(self):
        with pytest.raises(MrcError, match="unknown distance backend"):
            reuse_distances(np.array([1, 2]), backend="quantum")

    def test_rejects_2d(self):
        with pytest.raises(MrcError, match="1-D"):
            reuse_distances(np.zeros((2, 2), dtype=np.int64))


class TestLinesOf:
    def test_lowers_to_line_numbers(self):
        addrs = np.array([0, 63, 64, 129], dtype=np.uint64)
        assert lines_of(addrs, 64).tolist() == [0, 0, 1, 2]

    def test_rejects_non_power_of_two(self):
        with pytest.raises(MrcError, match="power of two"):
            lines_of(np.array([0], dtype=np.uint64), 48)


class TestPreviousOccurrence:
    @settings(max_examples=50, deadline=None)
    @given(streams)
    def test_matches_naive(self, lines):
        expected = []
        last: dict[int, int] = {}
        for t, line in enumerate(lines):
            expected.append(last.get(line, -1))
            last[line] = t
        got = previous_occurrence(np.asarray(lines, dtype=np.int64))
        assert got.tolist() == expected


class TestSelfRankLeq:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(-1, 25), min_size=0, max_size=120))
    def test_matches_brute_force(self, values):
        got = self_rank_leq(np.asarray(values, dtype=np.int64))
        brute = [
            sum(1 for u in values[:t] if u <= v)
            for t, v in enumerate(values)
        ]
        assert got.tolist() == brute

    def test_large_random_spot_checks(self):
        rng = np.random.default_rng(9)
        v = rng.integers(-1, 3000, 50_000)
        got = self_rank_leq(v)
        for t in rng.integers(0, len(v), 200):
            assert got[t] == int(np.sum(v[:t] <= v[t]))


class TestPrefixRankLeq:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=80),
        st.data(),
    )
    def test_matches_brute_force(self, values, data):
        n = len(values)
        n_queries = data.draw(st.integers(1, 20))
        prefixes = data.draw(
            st.lists(st.integers(0, n), min_size=n_queries, max_size=n_queries)
        )
        thresholds = data.draw(
            st.lists(st.integers(0, 35), min_size=n_queries, max_size=n_queries)
        )
        got = prefix_rank_leq(
            np.asarray(values), np.asarray(prefixes), np.asarray(thresholds)
        )
        brute = [
            sum(1 for v in values[:p] if v <= t)
            for p, t in zip(prefixes, thresholds)
        ]
        assert got.tolist() == brute

    def test_rejects_negative_values(self):
        with pytest.raises(MrcError, match="non-negative"):
            prefix_rank_leq(np.array([-1]), np.array([1]), np.array([0]))
