"""Histogram invariants and the binomial associativity model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.mrc import (
    COLD,
    MrcError,
    StackDistanceHistogram,
    expected_misses,
    miss_probability,
)

distance_arrays = st.lists(
    st.one_of(st.just(COLD), st.integers(0, 40)), min_size=0, max_size=120
).map(lambda xs: np.asarray(xs, dtype=np.int64))


class TestHistogram:
    def test_known_stream(self):
        # distances of [0, 1, 0, 1, 0] by line: COLD COLD 1 1 1
        hist = StackDistanceHistogram.from_distances(
            np.array([COLD, COLD, 1, 1, 1])
        )
        assert hist.cold == 2
        assert hist.n_refs == 5
        assert hist.misses_at(1) == 5        # 1-line cache: everything misses
        assert hist.misses_at(2) == 2        # 2 lines: only the colds
        assert hist.miss_ratio_at(2) == pytest.approx(0.4)
        assert hist.hits_at(1000) == 3       # clamped past the histogram end

    @settings(max_examples=60, deadline=None)
    @given(distance_arrays)
    def test_mass_invariant(self, dists):
        hist = StackDistanceHistogram.from_distances(dists)
        assert hist.mass == pytest.approx(len(dists))
        assert hist.n_refs == len(dists)

    @settings(max_examples=40, deadline=None)
    @given(distance_arrays, st.floats(0.05, 1.0))
    def test_weighted_mass_and_adjustment(self, dists, rate):
        weight = 1.0 / rate
        hist = StackDistanceHistogram.from_distances(
            dists, weight=weight, n_refs=len(dists)
        )
        assert hist.mass == pytest.approx(len(dists) * weight)
        hist.adjust_mass(len(dists))
        assert hist.mass == pytest.approx(len(dists))

    def test_monotone_in_cache_size(self):
        rng = np.random.default_rng(5)
        dists = rng.integers(0, 200, 5000)
        hist = StackDistanceHistogram.from_distances(dists)
        ratios = [hist.miss_ratio_at(c) for c in (1, 2, 4, 16, 64, 256, 1024)]
        assert ratios == sorted(ratios, reverse=True)

    def test_rejects_bad_inputs(self):
        with pytest.raises(MrcError, match="non-negative"):
            StackDistanceHistogram.from_distances(np.array([-2]))
        with pytest.raises(MrcError, match="1-D"):
            StackDistanceHistogram(np.zeros((2, 2)), cold=0, n_refs=1)
        with pytest.raises(MrcError, match="n_refs"):
            StackDistanceHistogram(np.zeros(1), cold=0, n_refs=-1)
        with pytest.raises(MrcError, match="capacity"):
            StackDistanceHistogram.from_distances(np.array([0])).hits_at(-1)

    def test_empty(self):
        hist = StackDistanceHistogram.from_distances(np.array([], dtype=np.int64))
        assert hist.mass == 0
        assert hist.miss_ratio_at(4) == 0.0


class TestMissProbability:
    def test_fully_assoc_is_exact_step(self):
        pm = miss_probability(np.arange(10), n_sets=1, assoc=4)
        assert pm.tolist() == [0, 0, 0, 0, 1, 1, 1, 1, 1, 1]

    def test_matches_exact_binomial_tail(self):
        n_sets, assoc = 8, 2
        p = 1.0 / n_sets
        for d in range(0, 40):
            exact = sum(
                math.comb(d, j) * p**j * (1 - p) ** (d - j)
                for j in range(assoc, d + 1)
            )
            got = miss_probability(np.array([d]), n_sets, assoc)[0]
            assert got == pytest.approx(exact, abs=1e-12)

    def test_monotone_in_distance_and_bounded(self):
        pm = miss_probability(np.arange(0, 3000, 7), n_sets=64, assoc=4)
        assert np.all(np.diff(pm) >= -1e-12)
        assert pm.min() >= 0.0 and pm.max() <= 1.0

    def test_distance_zero_never_misses(self):
        assert miss_probability(np.array([0]), n_sets=16, assoc=1)[0] == 0.0

    def test_rejects_bad_geometry(self):
        with pytest.raises(MrcError, match="geometry"):
            miss_probability(np.array([1]), n_sets=0, assoc=4)
        with pytest.raises(MrcError, match="non-negative"):
            miss_probability(np.array([-1]), n_sets=4, assoc=2)


class TestExpectedMisses:
    def test_fully_assoc_equals_suffix_sum(self):
        hist = StackDistanceHistogram.from_distances(
            np.array([COLD, 0, 3, 5, 9])
        )
        assert expected_misses(hist, 4, assoc=None) == hist.misses_at(4)
        assert expected_misses(hist, 4, assoc=4) == hist.misses_at(4)

    def test_correction_between_fully_assoc_bounds(self):
        rng = np.random.default_rng(11)
        hist = StackDistanceHistogram.from_distances(rng.integers(0, 500, 4000))
        lines = 256
        corrected = expected_misses(hist, lines, assoc=4)
        # Conflicts can only add misses relative to fully associative.
        assert corrected >= hist.misses_at(lines) - 1e-9
        assert corrected <= hist.mass + 1e-9

    def test_rejects_bad_shapes(self):
        hist = StackDistanceHistogram.from_distances(np.array([0, 1]))
        with pytest.raises(MrcError, match="divisible"):
            expected_misses(hist, 6, assoc=4)
        with pytest.raises(MrcError, match="positive"):
            expected_misses(hist, 0)
