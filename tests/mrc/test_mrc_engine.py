"""MRC engine orchestration: modes, per-object decomposition, cell picking."""

import numpy as np
import pytest

from repro.cache.mrc import (
    MrcError,
    build_mrc,
    mrc_from_addrs,
    select_verification_sizes,
)
from repro.workloads.registry import make_workload


def interleaved_stream(objects, lines_each, repeats):
    """Round-robin line-stride sweeps over the given objects."""
    chunks = []
    for _ in range(repeats):
        for obj in objects:
            chunks.append(
                np.arange(obj.base, obj.base + lines_each * 64, 64, dtype=np.uint64)
            )
    return np.concatenate(chunks)


class TestMrcFromAddrs:
    def test_exact_and_rate_one_shards_agree(self):
        rng = np.random.default_rng(1)
        addrs = rng.integers(0, 1 << 20, 20_000).astype(np.uint64)
        exact = mrc_from_addrs(addrs, mode="exact")
        full = mrc_from_addrs(addrs, mode="shards", sample_rate=1.0)
        assert full.mode == "exact"  # rate 1.0 collapses to the exact pass
        for size in (4096, 65536, 1 << 20):
            assert exact.miss_ratio(size) == full.miss_ratio(size)

    @pytest.mark.parametrize("backend", ("fenwick", "offline"))
    def test_backends_agree_end_to_end(self, backend):
        rng = np.random.default_rng(2)
        addrs = rng.integers(0, 1 << 18, 30_000).astype(np.uint64)
        a = mrc_from_addrs(addrs)  # default: sortmerge
        b = mrc_from_addrs(addrs, distance_backend=backend)
        for size in (4096, 32768, 262144):
            assert a.misses(size) == b.misses(size)

    def test_empty_stream(self):
        res = mrc_from_addrs(np.empty(0, dtype=np.uint64))
        assert res.n_refs == 0
        assert res.miss_ratio(4096) == 0.0

    def test_rejects_unknown_mode(self):
        with pytest.raises(MrcError, match="unknown MRC mode"):
            mrc_from_addrs(np.array([0], dtype=np.uint64), mode="psychic")

    def test_rejects_empty_sample(self):
        addrs = np.zeros(100, dtype=np.uint64)  # one line only
        with pytest.raises(MrcError, match="sampled no lines"):
            mrc_from_addrs(addrs, mode="shards", sample_rate=1e-9, seed=0)

    def test_rejects_sub_line_cache(self):
        res = mrc_from_addrs(np.array([0], dtype=np.uint64))
        with pytest.raises(MrcError, match="smaller than one"):
            res.miss_ratio(32)

    def test_unknown_object_name(self):
        res = mrc_from_addrs(np.array([0], dtype=np.uint64))
        with pytest.raises(MrcError, match="no histogram"):
            res.miss_ratio(4096, name="ghost")


class TestPerObject:
    def test_partition_sums_to_aggregate(self, populated_map):
        omap, objs, _heap = populated_map
        stream = interleaved_stream([objs["A"], objs["B"], objs["h1"]], 40, 5)
        res = mrc_from_addrs(stream, snapshot=omap.snapshot(), mode="exact")
        assert set(res.object_names()) == {"A", "B", objs["h1"].name}
        # Every ref is attributed, so per-object histograms partition the
        # aggregate: misses sum exactly at every size (exact mode).
        for size in (4096, 8192, 65536):
            total = sum(
                res.misses(size, name=name) for name in res.object_names()
            )
            assert total == pytest.approx(res.misses(size))
        assert sum(h.n_refs for h in res.per_object.values()) == res.n_refs

    def test_shards_per_object_mass_matches_true_counts(self, populated_map):
        omap, objs, _heap = populated_map
        stream = interleaved_stream([objs["A"], objs["B"], objs["C"]], 60, 8)
        res = mrc_from_addrs(
            stream, snapshot=omap.snapshot(), mode="shards",
            sample_rate=0.5, seed=3,
        )
        snapshot = omap.snapshot()
        true_counts = snapshot.count_by_object(stream)
        by_name = {o.name: int(c) for o, c in zip(snapshot.objects, true_counts)}
        for name, hist in res.per_object.items():
            assert hist.n_refs == by_name[name]
            assert hist.mass == pytest.approx(by_name[name])  # SHARDS-adj


class TestBuildMrc:
    def test_compiled_and_generator_paths_identical(self):
        from repro.workloads.compile import compile_workload

        wl = make_workload("mgrid", seed=7, n_vcycles=2, fine_lines=2000)
        compiled = compile_workload(wl)
        via_compiled = build_mrc(wl, compiled=compiled, max_refs=40_000)
        via_generator = build_mrc(wl, max_refs=40_000)
        assert via_compiled.n_refs == via_generator.n_refs
        for size in (4096, 65536, 1 << 20):
            assert via_compiled.misses(size) == via_generator.misses(size)
        assert via_compiled.object_names() == via_generator.object_names()

    def test_requires_a_source(self):
        from repro.cache.mrc.engine import _collect_addrs

        with pytest.raises(MrcError, match="workload or a compiled"):
            _collect_addrs(None, None, None)


class TestSelectVerificationSizes:
    def test_picks_the_knee(self):
        # Flat at 1.0 until 256K, cliff to 0.0 at 512K: curvature peaks
        # at the two sizes flanking the drop.
        sizes = [2**b for b in range(14, 23)]
        curve = {s: (1.0 if s <= 256 * 1024 else 0.0) for s in sizes}
        chosen = select_verification_sizes(curve, k=2)
        assert chosen == [256 * 1024, 512 * 1024]

    def test_k_zero_and_oversized(self):
        curve = {1024: 1.0, 2048: 0.5, 4096: 0.1}
        assert select_verification_sizes(curve, k=0) == []
        assert select_verification_sizes(curve, k=10) == [1024, 2048, 4096]

    def test_tiny_curves(self):
        assert select_verification_sizes({4096: 0.5}, k=2) == [4096]
        assert select_verification_sizes({}, k=2) == []

    def test_interior_only_when_enough_points(self):
        sizes = [2**b for b in range(14, 22)]
        curve = {s: 1.0 / s for s in sizes}
        chosen = select_verification_sizes(curve, k=3)
        assert all(sizes[0] < s <= sizes[-2] for s in chosen) or len(chosen) == 3
