"""RPL501 snapshot-payload completeness, including the drift regression.

The drift regression is the acceptance check: textually removing a field
from the *real* ``SimulationSession.snapshot()`` payload must make
RPL501 fire on the modified source — that is what protects the
checkpoint/resume bit-identity contract against future field additions.
"""

from collections import Counter
from pathlib import Path

import repro.sim.session as session_mod
from repro.lint import run_lint

FIXTURES = Path(__file__).parent / "fixtures"


def counts(*paths):
    return Counter(v.code for v in run_lint(list(paths)))


class TestFixtures:
    def test_good_fixture_clean(self):
        assert counts(FIXTURES / "snapshot_good.py") == {}

    def test_bad_fixture_flags_all_three(self):
        assert counts(FIXTURES / "snapshot_bad.py") == {"RPL501": 3}

    def test_bad_fixture_names_the_problems(self):
        messages = " ".join(
            v.message for v in run_lint([FIXTURES / "snapshot_bad.py"])
        )
        assert "'version'" in messages  # missing format stamp
        assert "'cycle_carry'" in messages  # field never written
        assert "'cycle_cary'" in messages  # dead payload key

    def test_snapshot_without_builder(self):
        assert counts(FIXTURES / "snapshot_no_builder.py") == {"RPL501": 1}

    def test_v4_multicore_shape_clean(self):
        assert counts(FIXTURES / "snapshot_v4_good.py") == {}

    def test_v4_cores_field_missing_from_payload_flagged(self):
        violations = run_lint([FIXTURES / "snapshot_v4_bad.py"])
        assert Counter(v.code for v in violations) == {"RPL501": 1}
        assert any("'cores'" in v.message for v in violations)


class TestDriftRegression:
    def test_removing_a_field_from_the_real_payload_fails_lint(self, tmp_path):
        source = Path(session_mod.__file__).read_text()
        dropped = "\n".join(
            line
            for line in source.splitlines()
            if '"cycle_carry": self._cycle_carry' not in line
        )
        assert dropped != source, "payload line not found in session.py"
        mutated = tmp_path / "session.py"
        mutated.write_text(dropped)
        violations = [v for v in run_lint([mutated]) if v.code == "RPL501"]
        assert violations, "RPL501 must fire when a field leaves the payload"
        assert any("cycle_carry" in v.message for v in violations)

    def test_adding_a_field_without_hashing_it_fails_lint(self, tmp_path):
        """The reverse drift: a new dataclass field nobody snapshots."""
        source = Path(session_mod.__file__).read_text()
        marker = "    dispatcher: ToolDispatcher | None"
        assert marker in source
        mutated = tmp_path / "session.py"
        mutated.write_text(
            source.replace(marker, marker + "\n    new_state: int = 0", 1)
        )
        violations = [v for v in run_lint([mutated]) if v.code == "RPL501"]
        assert any("new_state" in v.message for v in violations)

    def test_real_session_module_is_clean(self):
        assert counts(Path(session_mod.__file__)) == {}
