"""RPL401 stats purity against fixture pairs."""

from collections import Counter
from pathlib import Path

from repro.lint import run_lint

FIXTURES = Path(__file__).parent / "fixtures"


def counts(*paths):
    return Counter(v.code for v in run_lint(list(paths)))


def test_direct_counter_writes_are_flagged():
    got = counts(FIXTURES / "stats_bad.py")
    assert got == {"RPL401": 4}


def test_mechanism_ledger_writes_are_flagged(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text(
        "def rescue(cache_stats):\n"
        "    cache_stats.mechanism['sb_hits'] = 3\n"
    )
    assert counts(mod) == {"RPL401": 1}


def test_mutation_inside_cachestats_is_allowed():
    assert counts(FIXTURES / "stats_good.py") == {}


def test_local_stats_variable_is_tracked(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text(
        "def tally(run_stats):\n"
        "    run_stats.accesses = 0\n"
    )
    assert counts(mod) == {"RPL401": 1}
