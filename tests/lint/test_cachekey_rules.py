"""RPL2xx cache-key completeness rules, including the drift regression.

The drift regression is the acceptance check for this rule family:
textually removing a field from the *real* ``TaskSpec.key()`` payload
must make RPL201 fire on the modified source.
"""

from collections import Counter
from pathlib import Path

import repro.experiments.parallel as parallel_mod
from repro.lint import run_lint

FIXTURES = Path(__file__).parent / "fixtures"


def counts(*paths):
    return Counter(v.code for v in run_lint(list(paths)))


class TestFixtures:
    def test_bad_fixture_flags_all_three_codes(self):
        got = counts(FIXTURES / "cachekey_bad.py")
        assert got == {"RPL201": 1, "RPL202": 1, "RPL204": 1}

    def test_bad_fixture_names_the_missing_fields(self):
        messages = " ".join(
            v.message for v in run_lint([FIXTURES / "cachekey_bad.py"])
        )
        assert "'chunk'" in messages  # TaskSpec field (RPL201)
        assert "'budget'" in messages  # ToolSpec field (RPL202)

    def test_good_fixture_with_payload_variable(self):
        # Also pins the `payload = {...}; stable_hash(payload)` resolution.
        assert counts(FIXTURES / "cachekey_good.py") == {}

    def test_taskspec_without_key_method(self):
        assert counts(FIXTURES / "cachekey_missing_key.py") == {"RPL201": 1}

    def test_canonical_fixtures(self):
        assert counts(FIXTURES / "canonical_bad.py") == {"RPL203": 1}
        assert counts(FIXTURES / "canonical_good.py") == {}


class TestDriftRegression:
    def test_removing_a_field_from_the_real_key_fails_lint(self, tmp_path):
        source = Path(parallel_mod.__file__).read_text()
        dropped = "\n".join(
            line
            for line in source.splitlines()
            if '"max_refs": self.max_refs' not in line
        )
        assert dropped != source, "payload line not found in parallel.py"
        mutated = tmp_path / "parallel.py"
        mutated.write_text(dropped)
        violations = [v for v in run_lint([mutated]) if v.code == "RPL201"]
        assert violations, "RPL201 must fire when a field leaves the key"
        assert any("max_refs" in v.message for v in violations)

    def test_real_parallel_module_is_clean(self):
        real = Path(parallel_mod.__file__)
        assert counts(real) == {}
