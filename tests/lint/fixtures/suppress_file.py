"""A file-wide suppression of one code silences every hit of it."""
# reprolint: disable-file=RPL102


def mix(a, b):
    return hash(a) ^ hash(b)
