"""Bad: TaskSpec without key() — the cache cannot address its results."""

from dataclasses import dataclass


@dataclass
class TaskSpec:
    workload: str
