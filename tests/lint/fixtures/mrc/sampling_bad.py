"""Bad: an MRC sampling pass with every determinism hazard the rules ban.

Lives under a directory named ``mrc`` so the RESULT_SCOPE entry (not the
``cache`` ancestor) is what puts it in scope.
"""

import time

import numpy as np


def sample_salt():
    rng = np.random.default_rng()  # RPL101: entropy-seeded
    return rng.integers(0, 1 << 32)


def bucket_for(line):
    return hash(line) % 64  # RPL102: PYTHONHASHSEED-randomised


def pass_metadata():
    return {"started": time.time()}  # RPL103: wall clock in a result path


def object_histograms(names):
    seen = set(names)
    return [name for name in seen]  # RPL104: unsorted set iteration
