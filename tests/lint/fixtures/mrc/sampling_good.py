"""Good: the same MRC sampling shapes written the reproducible way."""

import zlib

import numpy as np


def sample_salt(seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1 << 32)


def bucket_for(line):
    return zlib.crc32(repr(line).encode()) % 64


def object_histograms(names):
    seen = set(names)
    return [name for name in sorted(seen)]
