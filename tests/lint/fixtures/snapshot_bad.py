"""Bad: one field never written, one dead payload key, no version field.

Expected RPL501 violations:
* SessionSnapshot has no ``version`` field;
* field ``cycle_carry`` missing from the payload (restores to default);
* payload key ``cycle_cary`` (typo) is not a dataclass field.
"""

from dataclasses import dataclass


@dataclass
class SessionSnapshot:
    workload_name: str
    cycle_carry: float = 0.0


class SimulationSession:
    def snapshot(self):
        payload = {
            "workload_name": "x",
            "cycle_cary": 0.0,
        }
        return SessionSnapshot(**payload)
