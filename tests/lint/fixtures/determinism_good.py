"""Good: seeded generators and process-stable hashing."""

import zlib

import numpy as np


def draw(seed):
    rng = np.random.default_rng(seed)
    return rng.random(4)


def index_for(name):
    return zlib.crc32(name.encode()) % 16
