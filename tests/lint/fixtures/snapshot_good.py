"""Good: snapshot() payload and SessionSnapshot fields match exactly."""

from dataclasses import dataclass


@dataclass
class SessionSnapshot:
    version: int
    workload_name: str
    cycle_carry: float


class SimulationSession:
    def snapshot(self):
        payload = {
            "version": 1,
            "workload_name": "x",
            "cycle_carry": 0.0,
        }
        return SessionSnapshot(**payload)
