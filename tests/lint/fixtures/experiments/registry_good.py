"""RPL704 good fixture: registry sealed at import time, imports at top.

All registry entries are installed by module-level statements, so every
process — parent or forked worker — sees the identical mapping, and all
imports happen once at module import.
"""

import json
from concurrent.futures import ProcessPoolExecutor

_TOOLS = {
    "encode": json.dumps,
    "decode": json.loads,
}


def get_tool(name):
    return _TOOLS[name]


def run_cell(spec):
    return _TOOLS["encode"](spec)


def run_grid(specs):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(run_cell, spec) for spec in specs]
        return [f.result() for f in futures]
