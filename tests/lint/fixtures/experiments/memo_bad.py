"""RPL701 bad fixture: lru_cache memo in a worker-executed package.

The memo is module-level mutable state: a warm parent-process cache is
fork-copied into every worker, so a value computed before the fork is
served forever even if its inputs changed after import.
"""

from functools import lru_cache


@lru_cache(maxsize=1)  # RPL701
def version_digest():
    return "digest-of-sources"
