"""RPL702 bad fixture: live state captured into pool submissions.

Three distinct capture hazards: a lambda (unpicklable under spawn),
a function defined inside the submitting scope (same), and a live RNG
handle passed as an argument (fork-copies the generator state so every
worker replays the identical stream).
"""

from concurrent.futures import ProcessPoolExecutor

from repro.util.rng import make_rng


def run_lambda(values):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(lambda v: v * 2, v) for v in values]  # RPL702
        return [f.result() for f in futures]


def run_local(values):
    def helper(v):
        return v * 2

    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(helper, v) for v in values]  # RPL702
        return [f.result() for f in futures]


def _draw(rng, n):
    return rng.integers(0, 10, size=n)


def run_shared_rng(n_tasks):
    rng = make_rng(7)
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(_draw, rng, 4) for _ in range(n_tasks)]  # RPL702
        return [f.result() for f in futures]
