"""RPL701 bad fixture: worker-executed code writes module-level state.

``run_grid`` submits ``run_cell`` to a process pool; ``run_cell``
(directly and through ``_record``) mutates module-level containers that
every worker fork-copies — writes diverge silently between processes.
"""

from concurrent.futures import ProcessPoolExecutor

_RESULTS = {}
_SEEN = []


def _record(key, value):
    _RESULTS[key] = value  # RPL701: worker-reached via run_cell
    _SEEN.append(key)  # RPL701


def run_cell(spec):
    _record(spec["key"], spec["value"])
    return spec["value"]


def run_grid(specs):
    out = []
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(run_cell, spec) for spec in specs]
        for future in futures:
            out.append(future.result())
    return out
