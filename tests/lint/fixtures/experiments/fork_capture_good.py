"""RPL702 good fixture: submissions carry only plain data.

Workers receive picklable specs (ints, seeds) and construct their own
RNGs from the seed inside the worker — no live handles cross the
process boundary.
"""

from concurrent.futures import ProcessPoolExecutor

from repro.util.rng import make_rng


def draw_cell(seed, n):
    rng = make_rng(seed)
    return rng.integers(0, 10, size=n).tolist()


def run_grid(seeds):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(draw_cell, seed, 4) for seed in seeds]
        return [f.result() for f in futures]
