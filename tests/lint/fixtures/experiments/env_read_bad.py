"""RPL703 bad fixture: result-scope code branches on ambient env vars.

Environment reads make results depend on invisible launcher state —
two runs of the same manifest can diverge without any recorded input
changing.
"""

import os
from os import getenv


def pick_backend():
    if os.environ.get("REPRO_BACKEND"):  # RPL703
        return os.environ["REPRO_BACKEND"]  # RPL703
    return "reference"


def chunk_size():
    return int(os.getenv("REPRO_CHUNK", "4096"))  # RPL703


def threads():
    return int(getenv("REPRO_THREADS", "1"))  # RPL703
