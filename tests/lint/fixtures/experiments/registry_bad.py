"""RPL704 bad fixture: call-time registry mutation and worker imports.

``get_tool`` lazily populates a module-level registry on first call, so
which entries exist depends on call order — a fork taken before the
first call sees an empty registry. ``run_cell`` is worker-executed and
imports inside the function body, so the import executes per-process at
call time instead of once at module import.
"""

from concurrent.futures import ProcessPoolExecutor

_TOOLS = {}


def get_tool(name):
    if name not in _TOOLS:
        _TOOLS[name] = object()  # RPL704: call-time registry mutation
    return _TOOLS[name]


def run_cell(spec):
    import json  # RPL704: call-time import in worker closure

    return json.dumps(spec)


def run_grid(specs):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(run_cell, spec) for spec in specs]
        return [f.result() for f in futures]
