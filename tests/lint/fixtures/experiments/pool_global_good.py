"""RPL7xx good fixture: workers are pure functions of their spec.

State flows in through arguments and out through return values; the
module-level registry is populated once at import time and only read
afterwards.
"""

from concurrent.futures import ProcessPoolExecutor

#: Import-time population: every process sees the same mapping.
_SCALERS = {"linear": 1, "double": 2}


def run_cell(spec):
    scale = _SCALERS[spec["scaler"]]
    return spec["value"] * scale


def run_grid(specs):
    out = []
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(run_cell, spec) for spec in specs]
        for future in futures:
            out.append(future.result())
    return out
