"""RPL801/802 bad fixture: address values laundered through aliases.

Every sink operand here is an innocently-named temporary, so the
syntactic RPL302/303 rules see nothing — only def-use tracking ties the
temporaries back to their address/tag origins. This is the documented
alias false-negative the dataflow rules close.
"""

import numpy as np


def laundered_div(addr):
    tmp = addr  # alias: tmp now carries an address
    return tmp / 2  # RPL801 (not RPL302: 'tmp' is not address-shaped)


def laundered_float(line_tags):
    values = line_tags
    return float(values)  # RPL801


def chained_alias(addr):
    a = addr
    b = a + 1  # arithmetic keeps the taint
    return b / 4  # RPL801


def loop_carried(tags):
    acc = 0
    for _ in range(4):
        acc = tags  # taint enters on a later iteration's path
    return acc / 2  # RPL801


def laundered_narrow(addr_block):
    window = addr_block[4:]
    return np.asarray(window, dtype=np.int32)  # RPL802
