"""Bad: kernel backends with diverged public APIs."""


class SetKernel:
    def access(self, addrs, miss_budget=None):
        raise NotImplementedError

    def reset(self):
        raise NotImplementedError


class ReferenceKernel(SetKernel):
    def access(self, addrs, miss_budget=None):
        return 0

    def reset(self):
        pass

    def drain(self):  # RPL301: not on ArrayKernel, absent from the base
        pass


class ArrayKernel(SetKernel):
    def access(self, addrs, budget=None):  # RPL301: signature drift
        return 0

    def reset(self):
        pass
