"""Good: backends expose identical public methods and signatures."""


class SetKernel:
    def access(self, addrs, miss_budget=None):
        raise NotImplementedError


class ReferenceKernel(SetKernel):
    def access(self, addrs, miss_budget=None):
        return 0

    def _scan(self):  # private helpers are exempt from parity
        pass


class ArrayKernel(SetKernel):
    def access(self, addrs, miss_budget=None):
        return 0
