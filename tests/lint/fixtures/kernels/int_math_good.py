"""Good: shifts, masks and floor division keep address math exact."""

import numpy as np


def split(addr, line_bits, n_sets):
    line = addr >> line_bits
    set_idx = line % n_sets
    lines = np.asarray([line], dtype=np.uint64)
    return set_idx, lines
