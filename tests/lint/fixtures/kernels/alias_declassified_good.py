"""RPL801/802 good fixture: counts derived from addresses are clean.

Reductions (len/sum/.mean), comparisons and untainted values may flow
into float math freely — a miss *count* computed from an address array
is an ordinary integer, not an address.
"""

import numpy as np


def miss_ratio(addrs, n_refs):
    n_misses = len(addrs)  # len() declassifies
    return n_misses / n_refs


def mean_occupancy(tag_matrix, n_cells):
    occupied = (tag_matrix >= 0).sum()  # comparison + .sum() declassify
    return occupied / n_cells


def plain_math(x, y):
    scale = x + y
    return scale / 2.0


def narrow_count(addrs):
    n = len(addrs)
    return np.int32(n)  # narrowing a count is fine
