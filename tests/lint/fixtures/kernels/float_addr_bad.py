"""Bad: float arithmetic and narrowing dtypes on address values."""

import numpy as np


def split(addr, line_bits):
    line = addr / (1 << line_bits)  # RPL302: true division
    frac = float(line)  # RPL302: float() coercion
    lines = np.asarray([line], dtype=np.int32)  # RPL303: narrowing dtype
    return frac, lines
