"""Good: canonical() recurses dataclasses via dataclasses.fields."""

import dataclasses


def canonical(value):
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    return value
