"""Bad: spec fields missing from the cache-key payload, no version tag."""

from dataclasses import dataclass, field


def stable_hash(payload):
    return str(payload)


@dataclass
class ToolSpec:
    kind: str
    kwargs: dict = field(default_factory=dict)
    budget: int = 0  # RPL202: never hashed anywhere in the payload


@dataclass
class TaskSpec:
    workload: str
    seed: int = 0
    chunk: int = 1  # RPL201: neither hashed nor exempt

    def key(self):
        return stable_hash(
            {
                "workload": self.workload,
                "seed": self.seed,
                "tool": {"kind": "x", "kwargs": {}},
            }  # RPL204: no "version" entry
        )
