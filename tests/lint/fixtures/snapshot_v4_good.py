"""Good: the v4 multi-core shape — ``cores`` field written by both the
single-core payload (as None) and the multi-core builder."""

from dataclasses import dataclass


@dataclass
class SessionSnapshot:
    version: int
    workload_name: str
    cycle_carry: float
    cores: list | None = None


class SimulationSession:
    def snapshot(self):
        payload = {
            "version": 4,
            "workload_name": "x",
            "cycle_carry": 0.0,
            "cores": None,
        }
        return SessionSnapshot(**payload)
