"""Bad: SessionSnapshot defined, but nothing constructs it statically."""

from dataclasses import dataclass


@dataclass
class SessionSnapshot:
    version: int
    workload_name: str
