"""Fixture: sound stream fingerprint and parameter round-trips."""


def stable_hash(payload):
    return str(payload)


def code_version_tag():
    return "deadbeef"


def stream_fingerprint(workload):
    payload = {
        "kind": "compiled-stream",
        "format": 1,
        "workload": workload.name,
        "class": type(workload).__qualname__,
        "params": {},
        "version": code_version_tag(),
    }
    return stable_hash(payload)


class Workload:
    def __init__(self, scale=1.0, seed=None):
        self.scale = scale
        self.seed = seed


class StoresEverything(Workload):
    def __init__(self, scale=1.0, seed=None, depth=4, width=None):
        super().__init__(scale=scale, seed=seed)
        self.depth = depth
        if width is not None:
            self.width = width


class ForwardsPositionally(Workload):
    def __init__(self, scale, seed):
        super().__init__(scale, seed)


class OptedOut(Workload):
    # Never fingerprinted, so the round-trip convention does not apply.
    compiled_stream_safe = False

    def __init__(self, trace):
        super().__init__()
        self._source = trace
