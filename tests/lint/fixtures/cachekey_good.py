"""Good: complete key payload with an exemption and a version tag.

Builds the payload through a local variable (``payload = {...}``), the
same shape the real ``TaskSpec.key()`` uses for its runtime drift guard,
so this fixture also pins the rule's one-level indirection resolution.
"""

from dataclasses import dataclass, field


def stable_hash(payload):
    return str(payload)


_KEY_EXEMPT_FIELDS = frozenset({"label"})


@dataclass
class ToolSpec:
    kind: str
    kwargs: dict = field(default_factory=dict)


@dataclass
class TaskSpec:
    workload: str
    seed: int = 0
    label: str = ""

    def key(self):
        payload = {
            "workload": self.workload,
            "seed": self.seed,
            "tool": {"kind": "x", "kwargs": {}},
            "version": "tag",
        }
        return stable_hash(payload)
