"""Good: counters move only through CacheStats' own methods."""


class CacheStats:
    def __init__(self):
        self.accesses = 0
        self.misses = 0

    def record(self, tag, accesses, misses):
        self.accesses += accesses
        self.misses += misses


class Engine:
    def __init__(self, stats):
        self.stats = stats

    def bump(self, tag, n, m):
        self.stats.record(tag, n, m)
