"""Good: counters move only through CacheStats' own methods."""


class CacheStats:
    def __init__(self):
        self.accesses = 0
        self.misses = 0
        self.mechanism = {}

    def record(self, tag, accesses, misses, mechanism=None):
        self.accesses += accesses
        self.misses += misses
        if mechanism:
            for event, count in mechanism.items():
                self.mechanism[event] = self.mechanism.get(event, 0) + count


class Engine:
    def __init__(self, stats):
        self.stats = stats

    def bump(self, tag, n, m):
        self.stats.record(tag, n, m, mechanism={"vc_hits": 1})
