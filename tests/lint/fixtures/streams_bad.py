"""Fixture: broken stream fingerprint and parameter round-trips."""


def stable_hash(payload):
    return str(payload)


def stream_fingerprint(workload):
    # Missing "params" and "version": parameter changes and source edits
    # would silently reuse stale streams.
    payload = {
        "kind": "compiled-stream",
        "format": 1,
        "workload": workload.name,
        "class": type(workload).__qualname__,
    }
    return stable_hash(payload)


class Workload:
    def __init__(self, scale=1.0, seed=None):
        self.scale = scale
        self.seed = seed


class DropsAParameter(Workload):
    def __init__(self, scale=1.0, seed=None, depth=4):
        super().__init__(scale=scale, seed=seed)
        self._levels = depth  # not stored under the parameter's name


class TakesVarargs(Workload):
    def __init__(self, *arrays, **extra):
        super().__init__()
        self.arrays = arrays
        self.extra = extra
