"""Bad: hand-enumerated canonical() silently drops future fields."""


def canonical(value):
    if hasattr(value, "workload"):
        return {"workload": value.workload, "seed": value.seed}
    return value
