"""Good: simulated behaviour depends only on virtual time."""


def advance(clock_cycles, delta_cycles):
    return clock_cycles + delta_cycles
