"""A wall-clock read carrying an explicit, targeted suppression."""

import time


def telemetry_stamp():
    return time.time()  # reprolint: disable=RPL103
