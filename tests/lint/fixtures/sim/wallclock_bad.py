"""Bad: wall-clock reads inside a result-scoped package (sim/)."""

import time
from datetime import datetime


def stamp():
    started = time.time()  # RPL103
    label = datetime.now().isoformat()  # RPL103
    return started, label
