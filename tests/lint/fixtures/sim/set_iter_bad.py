"""Bad: nondeterministic set / .keys() iteration in a result path."""


def collect(mapping):
    seen = {1, 2, 3}
    out = [x * 2 for x in seen]  # RPL104: set-typed name
    for key in mapping.keys():  # RPL104: .keys()
        out.append(key)
    for item in {"a", "b"}:  # RPL104: set literal
        out.append(item)
    return out
