"""Good: sorted iteration and membership tests on sets."""


def collect(mapping):
    seen = {1, 2, 3}
    out = [x * 2 for x in sorted(seen)]
    for key in mapping:  # mappings iterate in insertion order
        out.append(key)
    return out, 2 in seen
