"""Bad: CacheStats counters mutated outside the class itself."""


class Engine:
    def __init__(self, stats):
        self.stats = stats

    def bump(self, tag):
        self.stats.misses += 1  # RPL401: bypasses per-tag attribution
        self.stats.accesses_by_tag[tag] = 1  # RPL401: dict write

    def rescue(self):
        self.stats.mechanism["vc_hits"] += 1  # RPL401: ledger dict write
        self.stats.mechanism = {}  # RPL401: replaces the mechanism ledger
