"""A targeted line suppression silences exactly one violation."""


def mix(a, b):
    x = hash(a)  # reprolint: disable=RPL102
    y = hash(b)
    return x ^ y
