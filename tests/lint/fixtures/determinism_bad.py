"""Bad: process-global randomness and builtin hash()."""

import random  # RPL101

import numpy as np


def draw():
    a = random.random()  # RPL101: process-global RNG
    b = np.random.rand(4)  # RPL101: NumPy legacy global RNG
    rng = np.random.default_rng()  # RPL101: entropy-seeded
    return a, b, rng


def index_for(name):
    return hash(name) % 16  # RPL102: PYTHONHASHSEED-randomised
