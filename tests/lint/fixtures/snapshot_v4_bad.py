"""Bad: the v4 drift this fixture pins — a ``cores`` field added to the
dataclass but never written by the payload, so a restored multi-core
session would silently come back single-core.

Expected RPL501 violation: field ``cores`` missing from the payload.
"""

from dataclasses import dataclass


@dataclass
class SessionSnapshot:
    version: int
    workload_name: str
    cycle_carry: float
    cores: list | None = None


class SimulationSession:
    def snapshot(self):
        payload = {
            "version": 4,
            "workload_name": "x",
            "cycle_carry": 0.0,
        }
        return SessionSnapshot(**payload)
