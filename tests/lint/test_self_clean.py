"""The linter's contract with this repo: src/ lints clean, CLI gates."""

import json
from pathlib import Path

from repro.cli import main as repro_main
from repro.lint import all_rules, run_lint
from repro.lint.cli import main as lint_main

SRC = Path(__file__).resolve().parents[2] / "src"
FIXTURES = Path(__file__).parent / "fixtures"

#: Every rule family code this repo ships; CI relies on all of them.
EXPECTED_CODES = {
    "RPL101", "RPL102", "RPL103", "RPL104",
    "RPL201", "RPL203",
    "RPL301", "RPL302", "RPL303",
    "RPL401",
    "RPL501",
    "RPL601", "RPL602",
    "RPL701", "RPL702", "RPL703", "RPL704",
    "RPL801", "RPL802",
}


def test_src_tree_is_clean():
    violations = run_lint([SRC])
    assert violations == [], "\n".join(v.render() for v in violations)


def test_all_rule_families_registered():
    assert {rule.code for rule in all_rules()} == EXPECTED_CODES


class TestCliExitCodes:
    def test_zero_on_clean(self, capsys):
        assert lint_main([str(FIXTURES / "determinism_good.py")]) == 0
        assert "0 violations" in capsys.readouterr().out

    def test_one_on_violations(self, capsys):
        assert lint_main([str(FIXTURES / "determinism_bad.py")]) == 1
        assert "RPL101" in capsys.readouterr().out

    def test_two_on_no_files(self, tmp_path, capsys):
        assert lint_main([str(tmp_path)]) == 2
        assert "no Python files" in capsys.readouterr().err

    def test_json_format(self, capsys):
        assert lint_main(
            [str(FIXTURES / "determinism_bad.py"), "--format", "json"]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["RPL102"] == 1

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in EXPECTED_CODES:
            assert code in out

    def test_repro_cli_delegates_lint_subcommand(self, capsys):
        assert repro_main(["lint", str(FIXTURES / "determinism_good.py")]) == 0
        assert "0 violations" in capsys.readouterr().out
