"""RPL3xx kernel-contract parity rules against fixture pairs."""

import shutil
from collections import Counter
from pathlib import Path

from repro.lint import run_lint

FIXTURES = Path(__file__).parent / "fixtures"


def counts(*paths):
    return Counter(v.code for v in run_lint(list(paths)))


class TestKernelParity:
    def test_diverged_backends(self):
        violations = run_lint([FIXTURES / "kernels" / "parity_bad.py"])
        got = Counter(v.code for v in violations)
        assert got == {"RPL301": 2}
        messages = " ".join(v.message for v in violations)
        assert "drain" in messages  # method on one backend only
        assert "signature differs" in messages  # access() drift

    def test_identical_backends(self):
        assert counts(FIXTURES / "kernels" / "parity_good.py") == {}


class TestFloatOnAddress:
    def test_bad_fixture(self):
        got = counts(FIXTURES / "kernels" / "float_addr_bad.py")
        assert got == {"RPL302": 2, "RPL303": 1}

    def test_good_fixture(self):
        assert counts(FIXTURES / "kernels" / "int_math_good.py") == {}

    def test_out_of_scope_path_is_ignored(self, tmp_path):
        copy = tmp_path / "float_addr_bad.py"
        shutil.copyfile(FIXTURES / "kernels" / "float_addr_bad.py", copy)
        assert counts(copy) == {}

    def test_count_style_names_are_not_addresses(self, tmp_path):
        scoped = tmp_path / "cache"
        scoped.mkdir()
        mod = scoped / "mod.py"
        mod.write_text("def frac(used, n_lines):\n    return used / n_lines\n")
        assert counts(mod) == {}
