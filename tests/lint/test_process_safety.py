"""RPL7xx process/concurrency-safety rules against fixture modules."""

import shutil
from collections import Counter
from pathlib import Path

from repro.lint import run_lint

FIXTURES = Path(__file__).parent / "fixtures"
EXP = FIXTURES / "experiments"


def counts(*paths):
    return Counter(v.code for v in run_lint(list(paths)))


class TestWorkerGlobalMutation:
    def test_pool_global_bad(self):
        violations = run_lint([EXP / "pool_global_bad.py"])
        got = Counter(v.code for v in violations)
        assert got == {"RPL701": 2}
        messages = " ".join(v.message for v in violations)
        # Mutations happen in _record, reached from the submitted run_cell:
        # the rule must follow the same-module call edge.
        assert "_record" in messages
        assert "_RESULTS" in messages and "_SEEN" in messages

    def test_lru_cache_memo(self):
        violations = run_lint([EXP / "memo_bad.py"])
        assert Counter(v.code for v in violations) == {"RPL701": 1}
        assert "lru_cache" in violations[0].message

    def test_pool_global_good(self):
        assert counts(EXP / "pool_global_good.py") == {}


class TestForkCapture:
    def test_fork_capture_bad(self):
        violations = run_lint([EXP / "fork_capture_bad.py"])
        assert Counter(v.code for v in violations) == {"RPL702": 3}
        messages = [v.message for v in violations]
        assert any("lambda" in m for m in messages)
        assert any("'helper'" in m for m in messages)
        assert any("`rng`" in m for m in messages)

    def test_fork_capture_good(self):
        assert counts(EXP / "fork_capture_good.py") == {}


class TestEnvRead:
    def test_env_read_bad(self):
        got = counts(EXP / "env_read_bad.py")
        assert got == {"RPL703": 4}

    def test_out_of_scope_path_is_ignored(self, tmp_path):
        copy = tmp_path / "env_read_bad.py"
        shutil.copyfile(EXP / "env_read_bad.py", copy)
        assert counts(copy) == {}


class TestCallTimeRegistry:
    def test_registry_bad(self):
        violations = run_lint([EXP / "registry_bad.py"])
        assert Counter(v.code for v in violations) == {"RPL704": 2}
        messages = " ".join(v.message for v in violations)
        assert "_TOOLS" in messages  # call-time mutation prong
        assert "import" in messages  # worker-import prong

    def test_registry_good(self):
        assert counts(EXP / "registry_good.py") == {}
