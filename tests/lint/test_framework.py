"""Framework behaviour: suppressions, selection, output, parse errors."""

import json
from pathlib import Path

from repro.lint import collect_files, format_human, format_json, run_lint

FIXTURES = Path(__file__).parent / "fixtures"


def codes(violations):
    return [v.code for v in violations]


class TestSuppressions:
    def test_line_suppression_silences_one_hit(self):
        violations = run_lint([FIXTURES / "suppress_line.py"])
        assert codes(violations) == ["RPL102"]
        # The surviving hit is the *unsuppressed* second hash() call.
        assert violations[0].line == 6

    def test_file_suppression_silences_every_hit(self):
        assert run_lint([FIXTURES / "suppress_file.py"]) == []

    def test_scoped_rule_suppression(self):
        path = FIXTURES / "sim" / "wallclock_suppressed.py"
        assert run_lint([path]) == []


class TestSelection:
    def test_select_by_exact_code(self):
        violations = run_lint(
            [FIXTURES / "determinism_bad.py"], select=["RPL102"]
        )
        assert codes(violations) == ["RPL102"]

    def test_select_by_family_prefix(self):
        violations = run_lint(
            [FIXTURES / "determinism_bad.py"], select=["RPL1"]
        )
        assert violations and all(c.startswith("RPL1") for c in codes(violations))


class TestOutput:
    def test_json_payload_shape(self):
        violations = run_lint([FIXTURES / "determinism_bad.py"])
        payload = json.loads(format_json(violations, files_checked=1))
        assert payload["files_checked"] == 1
        assert payload["counts"] == {"RPL101": 4, "RPL102": 1}
        first = payload["violations"][0]
        assert set(first) == {"path", "line", "col", "code", "message"}

    def test_human_render_includes_position_and_code(self):
        violations = run_lint([FIXTURES / "suppress_line.py"])
        text = format_human(violations, files_checked=1)
        assert "suppress_line.py:6:" in text
        assert "RPL102" in text
        assert "1 violation(s) in 1 file(s)" in text

    def test_human_clean_summary(self):
        assert format_human([], files_checked=3) == "clean: 3 file(s), 0 violations"


class TestCollection:
    def test_parse_error_reports_rpl001(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        assert codes(run_lint([tmp_path])) == ["RPL001"]

    def test_collect_files_deduplicates_overlapping_paths(self):
        files = collect_files([FIXTURES, FIXTURES / "determinism_bad.py"])
        resolved = [f.resolve() for f in files]
        assert len(resolved) == len(set(resolved))

    def test_collect_files_skips_non_python(self, tmp_path):
        (tmp_path / "notes.txt").write_text("not python")
        (tmp_path / "mod.py").write_text("x = 1\n")
        assert [f.name for f in collect_files([tmp_path])] == ["mod.py"]
