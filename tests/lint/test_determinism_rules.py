"""RPL1xx determinism rules against good/bad fixture pairs."""

import shutil
from collections import Counter
from pathlib import Path

from repro.lint import run_lint

FIXTURES = Path(__file__).parent / "fixtures"


def counts(*paths):
    return Counter(v.code for v in run_lint(list(paths)))


class TestUnseededRandomAndHash:
    def test_bad_fixture(self):
        got = counts(FIXTURES / "determinism_bad.py")
        assert got == {"RPL101": 4, "RPL102": 1}

    def test_good_fixture(self):
        assert counts(FIXTURES / "determinism_good.py") == {}

    def test_seeded_default_rng_is_allowed_anywhere(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("import numpy as np\nrng = np.random.default_rng(7)\n")
        assert counts(mod) == {}


class TestWallClock:
    def test_bad_fixture_in_scope(self):
        got = counts(FIXTURES / "sim" / "wallclock_bad.py")
        assert got == {"RPL103": 2}

    def test_good_fixture(self):
        assert counts(FIXTURES / "sim" / "wallclock_good.py") == {}

    def test_out_of_scope_path_is_ignored(self, tmp_path):
        # The identical source outside sim/cache/... packages is telemetry
        # territory and must not be flagged.
        copy = tmp_path / "wallclock_bad.py"
        shutil.copyfile(FIXTURES / "sim" / "wallclock_bad.py", copy)
        assert counts(copy) == {}


class TestMrcScope:
    """The MRC engine is result-scoped by name, not just via cache/."""

    SRC_MRC = Path(__file__).resolve().parents[2] / "src" / "repro" / "cache" / "mrc"

    def test_bad_fixture_under_mrc_directory(self):
        got = counts(FIXTURES / "mrc" / "sampling_bad.py")
        assert got == {"RPL101": 1, "RPL102": 1, "RPL103": 1, "RPL104": 1}

    def test_good_fixture(self):
        assert counts(FIXTURES / "mrc" / "sampling_good.py") == {}

    def test_out_of_scope_copy_only_keeps_unscoped_rules(self, tmp_path):
        # RPL103/RPL104 are result-scoped and must vanish outside mrc/;
        # RPL101/RPL102 apply everywhere.
        copy = tmp_path / "sampling_bad.py"
        shutil.copyfile(FIXTURES / "mrc" / "sampling_bad.py", copy)
        assert counts(copy) == {"RPL101": 1, "RPL102": 1}

    def test_shipped_mrc_package_is_clean(self):
        assert counts(self.SRC_MRC) == {}


class TestUnsortedSetIteration:
    def test_bad_fixture_in_scope(self):
        got = counts(FIXTURES / "sim" / "set_iter_bad.py")
        assert got == {"RPL104": 3}

    def test_good_fixture(self):
        assert counts(FIXTURES / "sim" / "set_iter_good.py") == {}

    def test_self_attribute_taint_tracks_aliases(self, tmp_path):
        scoped = tmp_path / "core"
        scoped.mkdir()
        mod = scoped / "mod.py"
        mod.write_text(
            "class T:\n"
            "    def __init__(self):\n"
            "        self.live = set()\n"
            "    def drain(self):\n"
            "        pending = self.live\n"
            "        return [x for x in pending]\n"
        )
        assert counts(mod) == {"RPL104": 1}
