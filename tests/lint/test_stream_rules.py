"""RPL6xx compiled-stream rules, including the drift regressions.

The drift regressions are the acceptance check for this rule family:
textually removing the ``"params"`` key from the *real*
``stream_fingerprint`` payload must make RPL601 fire, and removing a
parameter's ``self.<name> = <name>`` line from a *real* workload class
must make RPL602 fire on the modified source.
"""

from collections import Counter
from pathlib import Path

import repro.workloads.compile as compile_mod
import repro.workloads.tomcatv as tomcatv_mod
import repro.workloads.trace as trace_mod
from repro.lint import run_lint

FIXTURES = Path(__file__).parent / "fixtures"


def counts(*paths):
    return Counter(v.code for v in run_lint(list(paths)))


class TestFixtures:
    def test_bad_fixture_flags_both_codes(self):
        assert counts(FIXTURES / "streams_bad.py") == {"RPL601": 2, "RPL602": 2}

    def test_bad_fixture_names_the_problems(self):
        messages = " ".join(
            v.message for v in run_lint([FIXTURES / "streams_bad.py"])
        )
        assert "'params'" in messages  # dropped fingerprint key
        assert "'version'" in messages  # dropped fingerprint key
        assert "'depth'" in messages  # unstored constructor parameter
        assert "*args/**kwargs" in messages  # un-addressable signature

    def test_good_fixture_is_clean(self):
        # Also pins: conditional stores, positional super() forwarding
        # and the compiled_stream_safe=False opt-out.
        assert counts(FIXTURES / "streams_good.py") == {}


class TestDriftRegression:
    def test_dropping_params_from_the_real_fingerprint_fails_lint(
        self, tmp_path
    ):
        source = Path(compile_mod.__file__).read_text()
        dropped = "\n".join(
            line
            for line in source.splitlines()
            if '"params": workload_params(workload)' not in line
        )
        assert dropped != source, "payload line not found in compile.py"
        mutated = tmp_path / "compile.py"
        mutated.write_text(dropped)
        violations = [v for v in run_lint([mutated]) if v.code == "RPL601"]
        assert violations, "RPL601 must fire when 'params' leaves the key"
        assert any("'params'" in v.message for v in violations)

    def test_unstoring_a_real_workload_param_fails_lint(self, tmp_path):
        source = Path(tomcatv_mod.__file__).read_text()
        dropped = "\n".join(
            line
            for line in source.splitlines()
            if "self.n_steps = n_steps" not in line
        )
        assert dropped != source, "round-trip line not found in tomcatv.py"
        mutated = tmp_path / "tomcatv.py"
        mutated.write_text(dropped)
        violations = [v for v in run_lint([mutated]) if v.code == "RPL602"]
        assert violations, "RPL602 must fire when a param stops round-tripping"
        assert any("n_steps" in v.message for v in violations)

    def test_real_modules_are_clean(self):
        assert counts(
            Path(compile_mod.__file__),
            Path(tomcatv_mod.__file__),
            Path(trace_mod.__file__),
        ) == {}
