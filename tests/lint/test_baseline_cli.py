"""CLI scoping aids: --changed, baselines, SARIF, suppression reasons."""

import json
import subprocess

import pytest

from repro.lint.baseline import apply_baseline, fingerprint, load_baseline, write_baseline
from repro.lint.cli import main
from repro.lint.framework import run_lint, run_lint_report

BAD_KERNEL = (
    "def f(addr):\n"
    "    return addr / 2\n"
)


@pytest.fixture
def scoped_bad(tmp_path):
    """A cache-scoped module with one RPL302 violation."""
    pkg = tmp_path / "cache"
    pkg.mkdir()
    mod = pkg / "mod.py"
    mod.write_text(BAD_KERNEL)
    return mod


class TestBaselineRoundTrip:
    def test_write_then_apply_suppresses_known_findings(self, scoped_bad, tmp_path):
        violations = run_lint([scoped_bad])
        assert violations
        baseline = tmp_path / "baseline.json"
        write_baseline(violations, baseline)
        allowed = load_baseline(baseline)
        fresh, matched = apply_baseline(violations, allowed)
        assert fresh == [] and matched == len(violations)

    def test_new_finding_escapes_baseline(self, scoped_bad, tmp_path):
        baseline = tmp_path / "baseline.json"
        write_baseline(run_lint([scoped_bad]), baseline)
        # Introduce a second, different defect.
        scoped_bad.write_text(BAD_KERNEL + "\n\ndef g(tags):\n    return float(tags)\n")
        fresh, matched = apply_baseline(
            run_lint([scoped_bad]), load_baseline(baseline)
        )
        assert matched == 1
        assert len(fresh) == 1 and "float(" in fresh[0].message

    def test_extra_instance_of_known_defect_escapes(self, scoped_bad, tmp_path):
        # Counts matter: a second copy of an already-baselined finding
        # (same fingerprint) must still surface.
        violations = run_lint([scoped_bad])
        baseline = tmp_path / "baseline.json"
        write_baseline(violations, baseline)
        doubled = violations + violations
        fresh, matched = apply_baseline(doubled, load_baseline(baseline))
        assert matched == len(violations) and len(fresh) == len(violations)

    def test_fingerprint_ignores_line_numbers(self, scoped_bad):
        before = run_lint([scoped_bad])
        scoped_bad.write_text("# a comment shifting lines\n" + BAD_KERNEL)
        after = run_lint([scoped_bad])
        assert [fingerprint(v) for v in before] == [fingerprint(v) for v in after]
        assert before[0].line != after[0].line

    def test_version_mismatch_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 99, "entries": {}}))
        with pytest.raises(ValueError):
            load_baseline(bad)


class TestCliBaseline:
    def test_cli_round_trip(self, scoped_bad, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert main([str(scoped_bad), "--write-baseline", baseline]) == 0
        assert "wrote baseline" in capsys.readouterr().out
        # With the baseline applied the same tree is clean (exit 0).
        assert main([str(scoped_bad), "--baseline", baseline]) == 0
        out = capsys.readouterr().out
        assert "baselined finding(s) suppressed" in out

    def test_cli_unreadable_baseline_is_usage_error(self, scoped_bad, tmp_path):
        assert main([str(scoped_bad), "--baseline", str(tmp_path / "nope.json")]) == 2


class TestCliChanged:
    @pytest.fixture
    def repo(self, tmp_path):
        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t", "commit",
             "--allow-empty", "-q", "-m", "seed"],
            cwd=tmp_path,
            check=True,
        )
        return tmp_path

    def test_changed_picks_up_untracked_file(self, repo, monkeypatch, capsys):
        pkg = repo / "cache"
        pkg.mkdir()
        (pkg / "mod.py").write_text(BAD_KERNEL)
        monkeypatch.chdir(repo)
        assert main([str(pkg), "--changed"]) == 1
        assert "RPL302" in capsys.readouterr().out

    def test_changed_with_no_changes_is_clean(self, repo, monkeypatch, capsys):
        pkg = repo / "cache"
        pkg.mkdir()
        (pkg / "mod.py").write_text(BAD_KERNEL)
        subprocess.run(["git", "add", "-A"], cwd=repo, check=True)
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t", "commit",
             "-q", "-m", "add"],
            cwd=repo,
            check=True,
        )
        monkeypatch.chdir(repo)
        assert main([str(pkg), "--changed"]) == 0
        assert "0 changed file(s)" in capsys.readouterr().out

    def test_changed_outside_git_is_usage_error(self, tmp_path, monkeypatch):
        pkg = tmp_path / "cache"
        pkg.mkdir()
        (pkg / "mod.py").write_text(BAD_KERNEL)
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GIT_DIR", str(tmp_path / "no-such-dir"))
        assert main([str(pkg), "--changed"]) == 2


class TestSarif:
    def test_sarif_shape(self, scoped_bad, capsys):
        assert main([str(scoped_bad), "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "RPL302" in rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "RPL302"
        assert rule_ids[result["ruleIndex"]] == "RPL302"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["region"]["startLine"] == 2
        assert loc["region"]["startColumn"] >= 1  # SARIF is 1-based


class TestSuppressionReasons:
    def test_json_carries_line_suppression_reason(self, tmp_path, capsys):
        pkg = tmp_path / "cache"
        pkg.mkdir()
        mod = pkg / "mod.py"
        mod.write_text(
            "def f(addr):\n"
            "    return addr / 2  "
            "# reprolint: disable=RPL302 -- ratio for a plot only\n"
        )
        assert main([str(mod), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        (record,) = doc["suppressions"]
        assert record["codes"] == ["RPL302"]
        assert record["kind"] == "line"
        assert record["reason"] == "ratio for a plot only"

    def test_json_carries_file_suppression_reason(self, tmp_path, capsys):
        pkg = tmp_path / "cache"
        pkg.mkdir()
        mod = pkg / "mod.py"
        mod.write_text(
            BAD_KERNEL
            + "# reprolint: disable-file=RPL302 -- generated lookup table\n"
        )
        assert main([str(mod), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        (record,) = doc["suppressions"]
        assert record["kind"] == "file"
        assert record["reason"] == "generated lookup table"

    def test_reasonless_suppression_reason_is_null(self, tmp_path, capsys):
        pkg = tmp_path / "cache"
        pkg.mkdir()
        mod = pkg / "mod.py"
        mod.write_text(
            "def f(addr):\n"
            "    return addr / 2  # reprolint: disable=RPL302\n"
        )
        assert main([str(mod), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        (record,) = doc["suppressions"]
        assert record["reason"] is None

    def test_report_object_exposes_suppressions(self, tmp_path):
        pkg = tmp_path / "cache"
        pkg.mkdir()
        mod = pkg / "mod.py"
        mod.write_text(
            "def f(addr):\n"
            "    return addr / 2  # reprolint: disable=RPL302 -- demo\n"
        )
        report = run_lint_report([mod])
        assert report.violations == []
        (record,) = report.suppressions
        assert record.codes == ("RPL302",) and record.reason == "demo"
