"""Unit and property tests for the ``repro.lint.dataflow`` engine."""

import ast
import itertools
import textwrap

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.dataflow import (
    ReachingDefinitions,
    TaintAnalysis,
    build_cfg,
)


def parse_func(src):
    tree = ast.parse(textwrap.dedent(src))
    return tree.body[0]


def reachable_atoms(cfg):
    return [atom for _, atom in cfg.atoms()]


def all_atoms(cfg):
    out = []
    for block in cfg.blocks.values():
        out.extend(block.atoms)
    return out


class TestCFGStructure:
    def test_straight_line_order(self):
        func = parse_func(
            """
            def f():
                a = 1
                b = 2
                return a + b
            """
        )
        cfg = build_cfg(func)
        kinds = [type(a).__name__ for a in reachable_atoms(cfg)]
        assert kinds == ["Assign", "Assign", "Return"]

    def test_if_else_covers_both_arms(self):
        func = parse_func(
            """
            def f(flag):
                if flag:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        cfg = build_cfg(func)
        assigns = [a for a in reachable_atoms(cfg) if isinstance(a, ast.Assign)]
        assert len(assigns) == 2

    def test_while_has_back_edge(self):
        func = parse_func(
            """
            def f(n):
                i = 0
                while i < n:
                    i = i + 1
                return i
            """
        )
        cfg = build_cfg(func)
        header = next(
            bid
            for bid, block in cfg.blocks.items()
            if any(isinstance(a, ast.Compare) for a in block.atoms)
        )
        body = next(
            bid
            for bid, block in cfg.blocks.items()
            if any(isinstance(a, ast.Assign) for a in block.atoms)
            and header in block.succs
        )
        assert header in cfg.blocks[body].succs  # loop back edge
        assert body in cfg.reachable()

    def test_code_after_return_is_unreachable(self):
        func = parse_func(
            """
            def f():
                return 1
                dead = 2
            """
        )
        cfg = build_cfg(func)
        reach = reachable_atoms(cfg)
        assert not any(isinstance(a, ast.Assign) for a in reach)
        # ...but the atom still exists, in an unlinked block.
        assert any(isinstance(a, ast.Assign) for a in all_atoms(cfg))

    def test_break_skips_rest_of_loop_exit_reachable(self):
        func = parse_func(
            """
            def f(items):
                for item in items:
                    if item:
                        break
                    touched = item
                return 0
            """
        )
        cfg = build_cfg(func)
        names = [type(a).__name__ for a in reachable_atoms(cfg)]
        assert "Break" in names and "Return" in names and "Assign" in names

    def test_try_handler_reachable_from_body(self):
        func = parse_func(
            """
            def f():
                try:
                    x = risky()
                except ValueError:
                    x = 0
                return x
            """
        )
        cfg = build_cfg(func)
        assigns = [a for a in reachable_atoms(cfg) if isinstance(a, ast.Assign)]
        handlers = [
            a for a in reachable_atoms(cfg) if isinstance(a, ast.ExceptHandler)
        ]
        assert len(assigns) == 2 and len(handlers) == 1


class TestReachingDefinitions:
    def _analysis(self, src):
        func = parse_func(src)
        cfg = build_cfg(func)
        params = [a.arg for a in func.args.args]
        return func, cfg, ReachingDefinitions(cfg, params=params)

    def test_param_reaches_use(self):
        func, cfg, rd = self._analysis(
            """
            def f(addr):
                return addr
            """
        )
        chains = rd.use_defs()
        (use, defs), = [
            entry
            for entry in chains.values()
            if isinstance(entry[0], ast.Name) and entry[0].id == "addr"
        ]
        assert defs == frozenset({rd.param_defs["addr"]})

    def test_redefinition_kills_earlier_def(self):
        func, cfg, rd = self._analysis(
            """
            def f():
                x = 1
                x = 2
                return x
            """
        )
        chains = rd.use_defs()
        (_, defs), = [
            e for e in chains.values() if getattr(e[0], "id", None) == "x"
        ]
        assert len(defs) == 1
        (definition,) = defs
        assert definition.node.value.value == 2  # the second assignment

    def test_branch_merge_unions_definitions(self):
        func, cfg, rd = self._analysis(
            """
            def f(flag):
                if flag:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        chains = rd.use_defs()
        (_, defs), = [
            e for e in chains.values() if getattr(e[0], "id", None) == "x"
        ]
        assert len(defs) == 2  # both arms reach the join


ADDRY = ("addr", "tags", "line_tags")


def taint_of(src):
    func = parse_func(src)
    return TaintAnalysis(
        func,
        seed=lambda n: isinstance(n, ast.Name) and n.id in ADDRY,
        declassify=lambda n: (
            isinstance(n, ast.Call)
            and isinstance(n.func, ast.Name)
            and n.func.id == "len"
        ),
    )


def return_is_tainted(ta):
    for atom, env in ta.iter_atoms_with_env():
        if isinstance(atom, ast.Return) and atom.value is not None:
            return ta.expr_tainted(atom.value, env)
    raise AssertionError("no return found")


class TestTaintAnalysis:
    def test_direct_alias(self):
        ta = taint_of(
            """
            def f(addr):
                tmp = addr
                return tmp
            """
        )
        assert return_is_tainted(ta)

    def test_arithmetic_preserves_taint(self):
        ta = taint_of(
            """
            def f(addr):
                shifted = addr + 64
                return shifted
            """
        )
        assert return_is_tainted(ta)

    def test_declassify_stops_taint(self):
        ta = taint_of(
            """
            def f(addr):
                n = len(addr)
                return n
            """
        )
        assert not return_is_tainted(ta)

    def test_reassignment_clears(self):
        ta = taint_of(
            """
            def f(addr):
                x = addr
                x = 0
                return x
            """
        )
        assert not return_is_tainted(ta)

    def test_subscript_of_tainted_container(self):
        ta = taint_of(
            """
            def f(tags):
                first = tags[0]
                return first
            """
        )
        assert return_is_tainted(ta)

    def test_taint_survives_one_branch(self):
        ta = taint_of(
            """
            def f(addr, flag):
                x = 0
                if flag:
                    x = addr
                return x
            """
        )
        assert return_is_tainted(ta)


# --------------------------------------------------- coverage property
#
# Random programs built from a small statement grammar, with every
# simple statement replaced by a uniquely-numbered trace call. Actually
# *executing* the program gives ground truth: every marker that ran is
# execution-reachable, so it must sit in a CFG block reachable from
# entry. (The CFG is an over-approximation, so the converse need not
# hold.)

@st.composite
def programs(draw):
    counter = itertools.count()

    def stmt_lines(depth, in_loop, in_try):
        kinds = ["trace", "trace", "if"]
        if depth < 2:
            kinds += ["for", "try"]
        if in_loop:
            kinds += ["break", "continue"]
        if in_try:
            kinds += ["raise"]
        kinds += ["return"]
        kind = draw(st.sampled_from(kinds))
        if kind == "trace":
            return [f"t({next(counter)})"]
        if kind == "return":
            return ["return None"]
        if kind == "break":
            return ["break"]
        if kind == "continue":
            return ["continue"]
        if kind == "raise":
            return ["raise ValueError()"]
        if kind == "if":
            flag = draw(st.integers(0, 2))
            lines = [f"if flags[{flag}]:"] + indent(
                block(depth + 1, in_loop, in_try)
            )
            if draw(st.booleans()):
                lines += ["else:"] + indent(block(depth + 1, in_loop, in_try))
            return lines
        if kind == "for":
            trips = draw(st.integers(0, 2))
            return [f"for _ in range({trips}):"] + indent(
                block(depth + 1, True, in_try)
            )
        assert kind == "try"
        lines = ["try:"] + indent(block(depth + 1, in_loop, True))
        lines += ["except ValueError:"] + indent(
            block(depth + 1, in_loop, in_try)
        )
        return lines

    def indent(lines):
        return ["    " + line for line in lines]

    def block(depth, in_loop, in_try):
        out = []
        for _ in range(draw(st.integers(1, 3))):
            out.extend(stmt_lines(depth, in_loop, in_try))
        return out

    body = block(0, False, False)
    flags = draw(st.lists(st.booleans(), min_size=3, max_size=3))
    return "def f(flags):\n" + "\n".join("    " + line for line in body), flags


@given(programs())
@settings(max_examples=60, deadline=None)
def test_cfg_covers_every_executed_statement(case):
    src, flags = case
    tree = ast.parse(src)
    func = tree.body[0]
    cfg = build_cfg(func)

    markers = {}
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
            and node.value.func.id == "t"
        ):
            markers[node.value.args[0].value] = node

    # Structural totality: every marker exists in *some* block, even
    # when statically dead (parked in an unlinked block).
    everywhere = {
        id(a) for block in cfg.blocks.values() for a in block.atoms
    }
    assert all(id(node) in everywhere for node in markers.values())

    # Execution oracle: run the program; whatever actually executed
    # must be in a block reachable from entry.
    trace = []
    namespace = {"t": trace.append}
    exec(compile(src, "<gen>", "exec"), namespace)
    try:
        namespace["f"](flags)
    except ValueError:
        pass  # uncaught generated raise — trace up to it still counts
    covered = {id(a) for _, a in cfg.atoms()}
    for marker in trace:
        assert id(markers[marker]) in covered
