"""RPL8xx alias-aware taint rules: the upgrade over syntactic RPL3xx.

The central acceptance test: the alias fixtures are invisible to the old
name-pattern rules (FloatOnAddressRule/NarrowDtypeRule report nothing)
but caught by the dataflow rules — proving v2 closes the documented
alias false-negative rather than re-reporting what v1 already saw.
"""

from collections import Counter
from pathlib import Path

from repro.lint import run_lint
from repro.lint.rules.dataflow_taint import (
    AliasedFloatOnAddressRule,
    AliasedNarrowDtypeRule,
)
from repro.lint.rules.kernels import FloatOnAddressRule, NarrowDtypeRule

FIXTURES = Path(__file__).parent / "fixtures" / "kernels"
BAD = FIXTURES / "alias_float_bad.py"
GOOD = FIXTURES / "alias_declassified_good.py"


def counts(path, rules=None):
    return Counter(v.code for v in run_lint([path], rules=rules))


class TestAliasUpgrade:
    def test_old_syntactic_rules_miss_the_aliases(self):
        # The documented v1 false negative: every sink operand is an
        # innocently-named temporary, so the name-pattern rules are blind.
        assert counts(BAD, rules=[FloatOnAddressRule, NarrowDtypeRule]) == {}

    def test_dataflow_rules_catch_the_aliases(self):
        got = counts(BAD, rules=[AliasedFloatOnAddressRule, AliasedNarrowDtypeRule])
        assert got == {"RPL801": 4, "RPL802": 1}

    def test_full_rule_set_reports_each_defect_once(self):
        # RPL8xx skips syntactic hits (those stay RPL302/303), so running
        # everything never double-reports a single defect.
        got = counts(BAD)
        assert got == {"RPL801": 4, "RPL802": 1}


class TestDeclassification:
    def test_good_fixture_is_clean(self):
        assert counts(GOOD) == {}

    def test_reduction_declassifies(self, tmp_path):
        scoped = tmp_path / "cache"
        scoped.mkdir()
        mod = scoped / "mod.py"
        mod.write_text(
            "def f(addrs, total):\n"
            "    hits = len(addrs)\n"
            "    return hits / total\n"
        )
        assert counts(mod) == {}

    def test_alias_of_alias_still_tainted(self, tmp_path):
        scoped = tmp_path / "cache"
        scoped.mkdir()
        mod = scoped / "mod.py"
        mod.write_text(
            "def f(addr):\n"
            "    a = addr\n"
            "    b = a\n"
            "    c = b\n"
            "    return c / 8\n"
        )
        assert counts(mod) == {"RPL801": 1}

    def test_reassignment_clears_taint(self, tmp_path):
        scoped = tmp_path / "cache"
        scoped.mkdir()
        mod = scoped / "mod.py"
        mod.write_text(
            "def f(addr):\n"
            "    x = addr\n"
            "    x = 3\n"
            "    return x / 2\n"
        )
        assert counts(mod) == {}

    def test_branch_merge_keeps_taint(self, tmp_path):
        # Taint on ONE branch must survive the join (may-analysis).
        scoped = tmp_path / "cache"
        scoped.mkdir()
        mod = scoped / "mod.py"
        mod.write_text(
            "def f(addr, flag):\n"
            "    x = 0\n"
            "    if flag:\n"
            "        x = addr\n"
            "    return x / 2\n"
        )
        assert counts(mod) == {"RPL801": 1}
