"""Tests for the indexed max-priority queue behind the n-way search."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastructs.heap_pq import MaxPriorityQueue


class TestBasics:
    def test_empty(self):
        q = MaxPriorityQueue()
        assert len(q) == 0
        assert not q
        with pytest.raises(IndexError):
            q.pop()
        with pytest.raises(IndexError):
            q.peek()

    def test_push_pop_order(self):
        q = MaxPriorityQueue()
        q.push("low", 1.0)
        q.push("high", 9.0)
        q.push("mid", 5.0)
        assert q.pop() == ("high", 9.0)
        assert q.pop() == ("mid", 5.0)
        assert q.pop() == ("low", 1.0)

    def test_ties_broken_by_insertion_order(self):
        q = MaxPriorityQueue()
        q.push("first", 2.0)
        q.push("second", 2.0)
        assert q.pop()[0] == "first"
        assert q.pop()[0] == "second"

    def test_membership(self):
        q = MaxPriorityQueue()
        q.push("x", 1.0)
        assert "x" in q
        q.pop()
        assert "x" not in q

    def test_repush_updates(self):
        q = MaxPriorityQueue()
        q.push("x", 1.0)
        q.push("y", 2.0)
        q.push("x", 3.0)
        assert len(q) == 2
        assert q.peek() == ("x", 3.0)

    def test_update_down(self):
        q = MaxPriorityQueue()
        q.push("x", 9.0)
        q.push("y", 5.0)
        q.update("x", 1.0)
        assert q.peek()[0] == "y"

    def test_remove(self):
        q = MaxPriorityQueue()
        q.push("a", 1.0)
        q.push("b", 2.0)
        q.push("c", 3.0)
        assert q.remove("b") == 2.0
        assert "b" not in q
        assert [q.pop()[0], q.pop()[0]] == ["c", "a"]
        q.check_invariants()

    def test_priority_of(self):
        q = MaxPriorityQueue()
        q.push("a", 4.5)
        assert q.priority_of("a") == 4.5

    def test_peek_top(self):
        q = MaxPriorityQueue()
        for name, p in (("a", 1), ("b", 5), ("c", 3), ("d", 4)):
            q.push(name, p)
        top = q.peek_top(3)
        assert [item for item, _ in top] == ["b", "d", "c"]
        assert len(q) == 4  # non-destructive

    def test_items_descending(self):
        q = MaxPriorityQueue()
        for name, p in (("a", 1), ("b", 5), ("c", 3)):
            q.push(name, p)
        assert [i for i, _ in q.items()] == ["b", "c", "a"]

    def test_total_priority(self):
        q = MaxPriorityQueue()
        q.push("a", 0.25)
        q.push("b", 0.5)
        assert q.total_priority() == pytest.approx(0.75)

    def test_op_count(self):
        q = MaxPriorityQueue()
        for i in range(32):
            q.push(i, float(i))
        assert q.reset_op_count() > 0
        assert q.op_count == 0


class TestPropertyBased:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.floats(0, 100, allow_nan=False)),
            max_size=100,
        )
    )
    def test_pop_sequence_is_sorted(self, entries):
        q = MaxPriorityQueue()
        model: dict[int, float] = {}
        for item, priority in entries:
            q.push(item, priority)
            model[item] = priority
        q.check_invariants()
        popped = []
        while q:
            item, priority = q.pop()
            assert model.pop(item) == priority
            popped.append(priority)
        assert popped == sorted(popped, reverse=True)
        assert not model

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["push", "pop", "update", "remove"]),
                st.integers(0, 20),
                st.floats(0, 10, allow_nan=False),
            ),
            max_size=80,
        )
    )
    def test_random_ops_keep_invariants(self, ops):
        q = MaxPriorityQueue()
        model: dict[int, float] = {}
        for op, item, priority in ops:
            if op == "push":
                q.push(item, priority)
                model[item] = priority
            elif op == "pop" and model:
                got_item, got_priority = q.pop()
                best = max(model.values())
                assert got_priority == best
                assert model.pop(got_item) == got_priority
            elif op == "update" and item in model:
                q.update(item, priority)
                model[item] = priority
            elif op == "remove" and item in model:
                assert q.remove(item) == model.pop(item)
        q.check_invariants()
        assert len(q) == len(model)
