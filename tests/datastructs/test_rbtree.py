"""Unit and model-based property tests for the red-black tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastructs.rbtree import RedBlackTree


class TestBasicOps:
    def test_empty(self):
        t = RedBlackTree()
        assert len(t) == 0
        assert not t
        assert t.get(5) is None
        assert t.floor(5) is None
        assert t.ceiling(5) is None
        assert t.min_key() is None
        assert t.max_key() is None

    def test_insert_get(self):
        t = RedBlackTree()
        t.insert(10, "a")
        t.insert(5, "b")
        t.insert(20, "c")
        assert t.get(10) == "a"
        assert t.get(5) == "b"
        assert t.get(20) == "c"
        assert len(t) == 3
        assert 10 in t and 11 not in t

    def test_insert_replaces(self):
        t = RedBlackTree()
        t.insert(1, "old")
        t.insert(1, "new")
        assert t.get(1) == "new"
        assert len(t) == 1

    def test_delete(self):
        t = RedBlackTree()
        for k in (5, 3, 8, 1, 4):
            t.insert(k, k * 10)
        assert t.delete(3) == 30
        assert 3 not in t
        assert len(t) == 4
        t.check_invariants()

    def test_delete_missing_raises(self):
        t = RedBlackTree()
        with pytest.raises(KeyError):
            t.delete(99)

    def test_items_sorted(self):
        t = RedBlackTree()
        for k in (50, 10, 30, 20, 40):
            t.insert(k, None)
        assert t.keys() == [10, 20, 30, 40, 50]

    def test_min_max(self):
        t = RedBlackTree()
        for k in (7, 2, 9):
            t.insert(k, None)
        assert t.min_key() == 2
        assert t.max_key() == 9


class TestFloorCeiling:
    def setup_method(self):
        self.t = RedBlackTree()
        for k in (10, 20, 30):
            self.t.insert(k, f"v{k}")

    def test_floor_exact(self):
        assert self.t.floor(20) == (20, "v20")

    def test_floor_between(self):
        assert self.t.floor(25) == (20, "v20")

    def test_floor_below_min(self):
        assert self.t.floor(5) is None

    def test_floor_above_max(self):
        assert self.t.floor(99) == (30, "v30")

    def test_ceiling_exact(self):
        assert self.t.ceiling(20) == (20, "v20")

    def test_ceiling_between(self):
        assert self.t.ceiling(25) == (30, "v30")

    def test_ceiling_above_max(self):
        assert self.t.ceiling(31) is None

    def test_range_items(self):
        assert list(self.t.range_items(10, 30)) == [(10, "v10"), (20, "v20")]
        assert list(self.t.range_items(15, 35)) == [(20, "v20"), (30, "v30")]
        assert list(self.t.range_items(21, 29)) == []


class TestProbeCounting:
    def test_probes_accumulate_and_reset(self):
        t = RedBlackTree()
        for k in range(32):
            t.insert(k, None)
        t.reset_probe_count()
        t.floor(17)
        assert t.probe_count > 0
        count = t.reset_probe_count()
        assert count > 0
        assert t.probe_count == 0


@st.composite
def operation_sequences(draw):
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete", "floor", "ceiling"]),
                st.integers(0, 200),
            ),
            max_size=120,
        )
    )
    return ops


class TestModelBased:
    @settings(max_examples=60, deadline=None)
    @given(operation_sequences())
    def test_matches_dict_model(self, ops):
        """The tree must agree with a sorted-dict reference model after
        every operation, and its red-black invariants must hold."""
        tree = RedBlackTree()
        model: dict[int, int] = {}
        for op, key in ops:
            if op == "insert":
                tree.insert(key, key)
                model[key] = key
            elif op == "delete":
                if key in model:
                    assert tree.delete(key) == model.pop(key)
                else:
                    with pytest.raises(KeyError):
                        tree.delete(key)
            elif op == "floor":
                candidates = [k for k in model if k <= key]
                expected = max(candidates) if candidates else None
                got = tree.floor(key)
                assert (got[0] if got else None) == expected
            else:
                candidates = [k for k in model if k >= key]
                expected = min(candidates) if candidates else None
                got = tree.ceiling(key)
                assert (got[0] if got else None) == expected
        tree.check_invariants()
        assert tree.keys() == sorted(model)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 1000), unique=True, max_size=200))
    def test_invariants_after_bulk_insert(self, keys):
        tree = RedBlackTree()
        for k in keys:
            tree.insert(k, None)
        tree.check_invariants()
        assert tree.keys() == sorted(keys)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 100), unique=True, min_size=1, max_size=100))
    def test_invariants_after_deleting_half(self, keys):
        tree = RedBlackTree()
        for k in keys:
            tree.insert(k, None)
        for k in keys[:: 2]:
            tree.delete(k)
        tree.check_invariants()
        assert tree.keys() == sorted(set(keys) - set(keys[::2]))
