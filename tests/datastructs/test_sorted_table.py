"""Tests for the sorted-array variable map."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastructs.sorted_table import SortedTable


class TestBasics:
    def test_empty(self):
        t = SortedTable()
        assert len(t) == 0
        assert not t
        assert t.get(5) is None
        assert t.floor(5) is None
        assert t.min_key() is None

    def test_insert_keeps_sorted(self):
        t = SortedTable()
        for k in (30, 10, 20):
            t.insert(k, str(k))
        assert t.keys() == [10, 20, 30]
        assert t.values() == ["10", "20", "30"]

    def test_insert_replaces(self):
        t = SortedTable()
        t.insert(5, "a")
        t.insert(5, "b")
        assert t.get(5) == "b"
        assert len(t) == 1

    def test_delete(self):
        t = SortedTable()
        t.insert(1, "x")
        assert t.delete(1) == "x"
        assert len(t) == 0
        with pytest.raises(KeyError):
            t.delete(1)

    def test_contains(self):
        t = SortedTable()
        t.insert(7, None)
        assert 7 in t
        assert 8 not in t


class TestFreeze:
    def test_freeze_blocks_mutation(self):
        t = SortedTable()
        t.insert(1, "a")
        t.freeze()
        assert t.frozen
        with pytest.raises(RuntimeError):
            t.insert(2, "b")
        with pytest.raises(RuntimeError):
            t.delete(1)

    def test_frozen_lookups_still_work(self):
        t = SortedTable()
        t.insert(1, "a")
        t.freeze()
        assert t.get(1) == "a"
        assert t.floor(5) == (1, "a")


class TestFloorCeilingRange:
    def setup_method(self):
        self.t = SortedTable()
        for k in (100, 200, 300):
            self.t.insert(k, k)

    def test_floor(self):
        assert self.t.floor(100) == (100, 100)
        assert self.t.floor(250) == (200, 200)
        assert self.t.floor(99) is None

    def test_ceiling(self):
        assert self.t.ceiling(150) == (200, 200)
        assert self.t.ceiling(301) is None

    def test_range_items(self):
        assert list(self.t.range_items(100, 300)) == [(100, 100), (200, 200)]
        assert list(self.t.range_items(0, 1000)) == [(100, 100), (200, 200), (300, 300)]

    def test_probe_count_grows(self):
        self.t.reset_probe_count()
        self.t.floor(150)
        assert self.t.reset_probe_count() >= 1


class TestAgainstModel:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 500), max_size=100))
    def test_floor_matches_model(self, keys):
        t = SortedTable()
        model = {}
        for k in keys:
            t.insert(k, k)
            model[k] = k
        for probe in range(0, 501, 37):
            candidates = [k for k in model if k <= probe]
            expected = max(candidates) if candidates else None
            got = t.floor(probe)
            assert (got[0] if got else None) == expected
