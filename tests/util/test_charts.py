"""Tests for the ASCII chart renderers."""

from repro.util.charts import hbar_chart, line_chart, sparkline


class TestHbarChart:
    def test_basic_render(self):
        out = hbar_chart(
            ["tomcatv", "ijpeg"],
            {"search": [0.01, 0.02], "sample": [0.16, 0.003]},
            title="slowdown",
        )
        assert "tomcatv:" in out
        assert "search" in out
        assert "0.16" in out

    def test_log_scale_notes_peak(self):
        out = hbar_chart(["a"], {"s": [10.0]}, log=True, unit="%")
        assert "log scale" in out
        assert "10%" in out

    def test_zero_values_ok(self):
        out = hbar_chart(["a"], {"s": [0.0], "t": [5.0]})
        assert "0" in out

    def test_all_zero(self):
        out = hbar_chart(["a"], {"s": [0.0]}, title="t")
        assert "no nonzero" in out

    def test_longest_bar_is_peak(self):
        out = hbar_chart(["g"], {"big": [100.0], "small": [1.0]}, width=20)
        lines = [l for l in out.splitlines() if "|" in l]
        big_bar = lines[0].split("|")[1]
        small_bar = lines[1].split("|")[1]
        assert big_bar.count("█") > small_bar.count("█")

    def test_log_compresses_ratio(self):
        linear = hbar_chart(["g"], {"a": [1000.0], "b": [1.0]}, width=30)
        logged = hbar_chart(["g"], {"a": [1000.0], "b": [1.0]}, width=30, log=True)

        def bar_len(out, row):
            return [l for l in out.splitlines() if "|" in l][row].split("|")[1].count("█")

        assert bar_len(logged, 1) > bar_len(linear, 1)


class TestSparkline:
    def test_length_capped(self):
        assert len(sparkline(list(range(1000)), width=50)) == 50

    def test_shape(self):
        out = sparkline([0, 0, 10, 0])
        assert out[2] == "█"
        assert out[0] == " "

    def test_empty(self):
        assert sparkline([]) == ""


class TestLineChart:
    def test_rows_share_scale(self):
        out = line_chart({"hot": [10, 10, 10], "cold": [1, 1, 1]})
        rows = out.splitlines()
        assert rows[0].startswith("hot")
        hot_marks = rows[0].split("|")[1]
        cold_marks = rows[1].split("|")[1]
        assert max(hot_marks) > max(cold_marks)  # block chars sort by height

    def test_title(self):
        out = line_chart({"x": [1]}, title="Fig")
        assert out.splitlines()[0] == "Fig"
