"""Tests for ASCII table rendering."""

import pytest

from repro.util.format import Table, render_table


class TestTable:
    def test_basic_render(self):
        t = Table(["a", "bb"])
        t.add_row([1, "x"])
        out = render_table(t)
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "bb" in lines[0]
        assert "1" in lines[2]

    def test_title(self):
        t = Table(["col"], title="My Table")
        t.add_row(["v"])
        out = render_table(t)
        assert out.splitlines()[0] == "My Table"
        assert out.splitlines()[1] == "========"

    def test_row_length_validation(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_separator_renders_as_rule(self):
        t = Table(["a"])
        t.add_row(["x"])
        t.add_separator()
        t.add_row(["y"])
        out = render_table(t).splitlines()
        assert out[3] == out[1]  # the separator repeats the header rule

    def test_column_widths_fit_longest_cell(self):
        t = Table(["h"])
        t.add_row(["a-much-longer-cell"])
        out = render_table(t).splitlines()
        assert len(out[0]) == len("a-much-longer-cell")

    def test_separator_does_not_widen_columns(self):
        t = Table(["h"])
        t.add_separator()
        out = render_table(t).splitlines()
        # The separator renders as a rule matching the (1-char) column,
        # not as a literal "---" that would widen it.
        assert out[-1] == out[1] == "-"
