"""Tests for deterministic RNG plumbing."""

import numpy as np

from repro.util.rng import make_rng, spawn_rng


class TestMakeRng:
    def test_default_is_deterministic(self):
        a = make_rng().integers(0, 1 << 30, 8)
        b = make_rng().integers(0, 1 << 30, 8)
        assert np.array_equal(a, b)

    def test_seeded(self):
        a = make_rng(42).integers(0, 1 << 30, 8)
        b = make_rng(42).integers(0, 1 << 30, 8)
        c = make_rng(43).integers(0, 1 << 30, 8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)


class TestSpawnRng:
    def test_children_differ_by_key(self):
        parent1 = make_rng(1)
        parent2 = make_rng(1)
        a = spawn_rng(parent1, "alpha").integers(0, 1 << 30, 8)
        b = spawn_rng(parent2, "beta").integers(0, 1 << 30, 8)
        assert not np.array_equal(a, b)

    def test_children_deterministic(self):
        a = spawn_rng(make_rng(1), "x").integers(0, 1 << 30, 8)
        b = spawn_rng(make_rng(1), "x").integers(0, 1 << 30, 8)
        assert np.array_equal(a, b)
