"""Unit and property tests for half-open interval arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.intervals import (
    Interval,
    intersect,
    intersects,
    interval_len,
    is_empty,
    make,
    span,
    subtract,
    union_len,
)

ivs = st.tuples(
    st.integers(0, 10_000), st.integers(0, 10_000)
).map(lambda t: Interval(min(t), max(t)))


class TestBasics:
    def test_make_validates(self):
        with pytest.raises(ValueError):
            make(10, 5)

    def test_make_accepts_equal(self):
        assert is_empty(make(5, 5))

    def test_contains_is_half_open(self):
        iv = Interval(10, 20)
        assert 10 in iv
        assert 19 in iv
        assert 20 not in iv
        assert 9 not in iv

    def test_len(self):
        assert interval_len(Interval(3, 10)) == 7
        assert interval_len(Interval(3, 3)) == 0

    def test_span(self):
        assert span([Interval(5, 10), Interval(20, 30)]) == Interval(5, 30)

    def test_span_ignores_empty(self):
        assert span([Interval(5, 5), Interval(8, 9)]) == Interval(8, 9)

    def test_span_of_nothing(self):
        assert is_empty(span([]))


class TestIntersect:
    def test_overlap(self):
        assert intersect(Interval(0, 10), Interval(5, 15)) == Interval(5, 10)

    def test_disjoint_is_empty(self):
        assert is_empty(intersect(Interval(0, 5), Interval(10, 20)))

    def test_touching_do_not_intersect(self):
        # Half-open: [0,5) and [5,10) share no address.
        assert not intersects(Interval(0, 5), Interval(5, 10))

    @given(ivs, ivs)
    def test_intersects_iff_nonempty_intersection(self, a, b):
        assert intersects(a, b) == (not is_empty(intersect(a, b)))

    @given(ivs, ivs)
    def test_commutative(self, a, b):
        assert intersect(a, b) == intersect(b, a)


class TestSubtract:
    def test_hole_in_middle(self):
        parts = subtract(Interval(0, 100), Interval(40, 60))
        assert parts == [Interval(0, 40), Interval(60, 100)]

    def test_total_eclipse(self):
        assert subtract(Interval(10, 20), Interval(0, 100)) == []

    def test_no_overlap_returns_original(self):
        assert subtract(Interval(0, 10), Interval(50, 60)) == [Interval(0, 10)]

    def test_empty_minuend(self):
        assert subtract(Interval(5, 5), Interval(0, 10)) == []

    @given(ivs, ivs)
    def test_lengths_conserve(self, a, b):
        remaining = subtract(a, b)
        removed = interval_len(intersect(a, b))
        assert sum(interval_len(r) for r in remaining) + removed == interval_len(a)

    @given(ivs, ivs)
    def test_result_disjoint_from_b(self, a, b):
        for part in subtract(a, b):
            assert not intersects(part, b)


class TestUnionLen:
    def test_disjoint(self):
        assert union_len([Interval(0, 10), Interval(20, 30)]) == 20

    def test_overlapping(self):
        assert union_len([Interval(0, 10), Interval(5, 15)]) == 15

    def test_nested(self):
        assert union_len([Interval(0, 100), Interval(10, 20)]) == 100

    def test_empty_inputs(self):
        assert union_len([]) == 0
        assert union_len([Interval(5, 5)]) == 0

    @given(st.lists(ivs, max_size=8))
    def test_bounded_by_sum_and_span(self, parts):
        total = union_len(parts)
        assert total <= sum(interval_len(p) for p in parts)
        assert total <= interval_len(span(parts))
