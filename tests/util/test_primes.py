"""Tests for the primality helpers behind resonance-free periods."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.primes import is_prime, next_prime, prev_prime


class TestIsPrime:
    @pytest.mark.parametrize("n", [2, 3, 5, 7, 11, 50111, 104729])
    def test_primes(self, n):
        assert is_prime(n)

    @pytest.mark.parametrize("n", [-5, 0, 1, 4, 9, 50000, 104730])
    def test_composites(self, n):
        assert not is_prime(n)

    def test_paper_period(self):
        # The paper replaced 50,000 with the nearby prime 50,111.
        assert not is_prime(50_000)
        assert is_prime(50_111)


class TestNextPrev:
    def test_next_prime_of_paper_period(self):
        assert next_prime(50_000) == 50_021  # the smallest prime above 50,000

    def test_prev_prime(self):
        assert prev_prime(50_000) == 49_999

    def test_prev_prime_rejects_small(self):
        with pytest.raises(ValueError):
            prev_prime(2)

    @given(st.integers(2, 100_000))
    def test_next_prime_properties(self, n):
        p = next_prime(n)
        assert p > n
        assert is_prime(p)
        for candidate in range(n + 1, p):
            assert not is_prime(candidate)

    @given(st.integers(3, 10_000))
    def test_prev_prime_properties(self, n):
        p = prev_prime(n)
        assert p < n
        assert is_prime(p)
