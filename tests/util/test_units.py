"""Tests for size parsing and formatting."""

import pytest

from repro.util.units import KiB, MiB, fmt_bytes, fmt_count, fmt_cycles, fmt_pct, parse_size


class TestParseSize:
    @pytest.mark.parametrize(
        ("text", "expected"),
        [
            ("64", 64),
            ("2K", 2 * KiB),
            ("2k", 2 * KiB),
            ("256KiB", 256 * KiB),
            ("2MB", 2 * MiB),
            ("2 MiB", 2 * MiB),
            ("1g", 1024 * MiB),
        ],
    )
    def test_parses(self, text, expected):
        assert parse_size(text) == expected

    def test_int_passthrough(self):
        assert parse_size(4096) == 4096

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_size("lots")

    def test_rejects_unknown_suffix(self):
        with pytest.raises(ValueError):
            parse_size("5parsecs")


class TestFormat:
    def test_fmt_bytes(self):
        assert fmt_bytes(2 * MiB) == "2MiB"
        assert fmt_bytes(1536) == "1.5KiB"
        assert fmt_bytes(100) == "100B"

    def test_fmt_count(self):
        assert fmt_count(1234567) == "1,234,567"

    def test_fmt_cycles(self):
        assert fmt_cycles(2_500_000) == "2.50Mcyc"
        assert fmt_cycles(500) == "500cyc"
        assert fmt_cycles(3.2e9) == "3.20Gcyc"

    def test_fmt_pct(self):
        assert fmt_pct(0.225) == "22.5"
        assert fmt_pct(0.0301, digits=2) == "3.01"
