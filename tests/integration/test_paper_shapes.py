"""Integration tests: the paper's headline result *shapes* must hold.

These run the actual experiment drivers in quick mode (shared
session-scoped runner, so baselines are computed once) and assert the
qualitative claims of each table/figure — who wins, what fails, where
the effect appears — not absolute numbers.
"""

import pytest

from repro.core.report import rank_agreement
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig5 import run_fig5
from repro.experiments.resonance import run_resonance
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2


@pytest.fixture(scope="module")
def table1(quick_runner):
    return run_table1(quick_runner)


class TestTable1Shapes:
    def test_both_techniques_rank_consistently(self, table1, quick_runner):
        """Paper: 'both algorithms ranked the objects they found in order
        by the number of actual cache misses, except when the difference
        ... was small (generally less than 2%)'."""
        for app, vals in table1.values.items():
            assert vals["sample_rank_agreement"] >= 0.99, app
            assert vals["search_rank_agreement"] >= 0.8, app

    def test_sampling_error_small(self, table1):
        """Sampling shares track actual shares — except tomcatv, whose
        fixed-period run resonates with the RX/RY alternation exactly as
        the paper's own Table 1 shows (RX 37.1% vs RY 17.6%, a 14.6%
        error); the resonance experiment covers that case."""
        for app, vals in table1.values.items():
            if app == "tomcatv":
                rxry = vals["sample"].get("RX", 0) + vals["sample"].get("RY", 0)
                assert rxry == pytest.approx(0.45, abs=0.03)
            else:
                assert vals["sample_max_error"] < 0.03, app

    def test_search_finds_dominant_object(self, table1, quick_runner):
        for app in ("su2cor", "mgrid", "compress", "ijpeg"):
            actual_top = quick_runner.baseline(app).actual.names()[0]
            search = table1.values[app]["search"]
            assert actual_top in search, app

    def test_search_estimates_compress_exactly(self, table1):
        """compress is stationary; search estimates should be tight."""
        vals = table1.values["compress"]
        assert vals["search"]["orig_text_buffer"] == pytest.approx(0.63, abs=0.03)


class TestTable2Shapes:
    @pytest.fixture(scope="class")
    def table2(self, quick_runner):
        return run_table2(quick_runner)

    def test_two_way_reports_few_objects(self, table2):
        for app, vals in table2.values.items():
            assert 1 <= len(vals["two_way_found"]) <= 3, app

    def test_ten_way_reports_more(self, table2):
        richer = sum(
            1
            for vals in table2.values.values()
            if len(vals["ten_way_found"]) > len(vals["two_way_found"])
        )
        assert richer >= 5  # nearly every app

    def test_su2cor_two_way_failure(self, table2):
        """The paper's famous failure: the 2-way search misses U (its
        region was ranked low early and never refined)."""
        vals = table2.values["su2cor"]
        assert "U" not in vals["two_way_found"]
        assert "U" in vals["ten_way_found"]

    def test_two_way_top1_correct_elsewhere(self, table2, quick_runner):
        """Everywhere but su2cor, the 2-way search's first find is a
        genuine top-2 object."""
        for app, vals in table2.values.items():
            if app in ("su2cor", "swim"):  # swim: 13-way tie, any is valid
                continue
            top2 = [s.name for s in quick_runner.baseline(app).actual.top(2)]
            assert vals["two_way_found"][0] in top2, app


class TestFig2Shape:
    def test_priority_queue_beats_greedy(self, quick_runner):
        report = run_fig2(quick_runner)
        assert report.values["pq_top"] == report.values["hottest"] == "E"
        assert report.values["greedy_top"] != "E"
        assert "E" not in report.values["greedy_found"]


class TestFig5Shape:
    def test_abc_dip_to_zero(self, quick_runner):
        report = run_fig5(quick_runner)
        assert report.values["abc_zero_buckets"] >= 3
        assert report.values["rsd_exceeds_a_buckets"] >= 3

    def test_series_totals_match(self, quick_runner):
        report = run_fig5(quick_runner)
        series_total = sum(sum(v) for v in report.values["series"].values())
        assert series_total > 0


class TestResonanceShape:
    def test_even_period_resonates_prime_does_not(self, quick_runner):
        report = run_resonance(quick_runner)
        even_err = report.values["even/fixed"]["max_error"]
        prime_key = next(k for k in report.values if k.startswith("prime"))
        prime_err = report.values[prime_key]["max_error"]
        random_err = report.values["pseudo-random"]["max_error"]
        # Paper: 14.6% error with the even period, ~0.3% with the prime.
        assert even_err > 0.03
        assert prime_err < 0.01
        assert random_err < even_err
        assert even_err > 4 * prime_err
