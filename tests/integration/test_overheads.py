"""Integration tests for the Figure 3/4 overhead and perturbation shapes."""

import pytest

from repro.experiments.ablations import (
    run_alignment_ablation,
    run_multiplex_ablation,
    run_phase_heuristic_ablation,
    run_policy_ablation,
)
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4

APPS = ["tomcatv", "mgrid", "ijpeg"]


@pytest.fixture(scope="module")
def fig3(quick_runner):
    return run_fig3(quick_runner, apps=APPS)


@pytest.fixture(scope="module")
def fig4(quick_runner):
    return run_fig4(quick_runner, apps=APPS)


class TestFig3Shapes:
    def test_perturbation_near_negligible(self, fig3):
        """Paper: effects 'almost negligible' — low single-digit percent
        at worst for every configuration."""
        for app, vals in fig3.values.items():
            for key, increase in vals.items():
                if key == "baseline_misses":
                    continue
                assert increase < 0.05, (app, key, increase)

    def test_rare_sampling_perturbs_least_eventually(self, fig3):
        for app, vals in fig3.values.items():
            assert vals["sample_1000000"] <= vals["sample_1000"] + 0.001, app


class TestFig4Shapes:
    def test_frequent_sampling_expensive(self, fig4):
        """Paper: 1-in-1,000 costs up to ~16%; tomcatv is the worst."""
        t = fig4.values["tomcatv"]
        assert t["sample_1000"]["slowdown"] > 0.05
        assert t["sample_1000"]["slowdown"] > fig4.values["ijpeg"]["sample_1000"]["slowdown"]

    def test_10k_sampling_cheap(self, fig4):
        """Paper: at 1-in-10,000 the worst slowdown is ~1.6%."""
        for app, vals in fig4.values.items():
            assert vals["sample_10000"]["slowdown"] < 0.03, app

    def test_sampling_cost_near_9000_per_interrupt(self, fig4):
        for app, vals in fig4.values.items():
            cyc = vals["sample_1000"]["cycles_per_interrupt"]
            assert 8_800 <= cyc <= 11_000, app

    def test_search_cost_in_paper_band(self, fig4):
        """Paper: 26,000-64,000 cycles per search interrupt."""
        for app, vals in fig4.values.items():
            cyc = vals["search"]["cycles_per_interrupt"]
            assert 20_000 <= cyc <= 64_000, (app, cyc)

    def test_search_amortises_at_paper_scale(self, fig4):
        """Paper: search needs only a fixed handful of interrupts, so on a
        paper-length run its slowdown is far below 1-in-10,000 sampling."""
        for app, vals in fig4.values.items():
            assert (
                vals["search"]["slowdown_paper_scale"]
                < vals["sample_10000"]["slowdown_paper_scale"] / 10
            ), app

    def test_miss_rate_drives_interrupt_rate(self, fig4):
        """tomcatv (highest miss rate) takes the most sampling interrupts
        per cycle; ijpeg (lowest) the fewest — paper's 13-1,727 spread."""
        rates = {
            app: vals["sample_10000"]["interrupts_per_gcycle"]
            for app, vals in fig4.values.items()
        }
        assert rates["tomcatv"] > rates["mgrid"] > rates["ijpeg"]


class TestAblations:
    def test_alignment(self, quick_runner):
        report = run_alignment_ablation(quick_runner)
        aligned = report.values["aligned"]
        naive = report.values["naive"]
        actual = report.values["actual_hot"]
        assert aligned["hot_rank"] == 1
        assert abs(aligned["hot_share"] - actual) < 0.08
        # The naive split underestimates the straddling array badly (each
        # half region sees only part of it) or misses it outright.
        naive_share = naive["hot_share"] or 0.0
        assert naive_share < aligned["hot_share"] * 0.75

    def test_phase_heuristic(self, quick_runner):
        report = run_phase_heuristic_ablation(quick_runner)
        with_h = report.values["with heuristic"]["top5_hit_rate"]
        without = report.values["without"]["top5_hit_rate"]
        assert with_h >= 0.8
        assert with_h > without

    def test_multiplex_still_finds_top(self, quick_runner):
        report = run_multiplex_ablation(quick_runner)
        assert report.values["multiplexed"]["found"][0] == "U"

    def test_policy_robustness(self, quick_runner):
        report = run_policy_ablation(quick_runner)
        tops = [set(v["sampled_top3"]) for v in report.values.values()]
        assert tops[0] == tops[1] == tops[2] == {"RX", "RY", "AA"}
