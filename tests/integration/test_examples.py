"""Smoke tests: every shipped example must run cleanly end-to-end.

These invoke the scripts as subprocesses (the way a user would) and
assert on their headline output. They are the slowest tests in the
suite (~1 min total); deselect with ``-k 'not examples'`` for quick
iterations.
"""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "who is causing the cache misses?" in out
        assert "hot" in out
        assert "search overhead" in out

    def test_stencil_tuning(self):
        out = run_example("stencil_tuning.py")
        assert "fingers `grid`" in out
        assert "fix eliminated" in out
        # The fix must actually help.
        assert "eliminated 0%" not in out

    def test_heap_profiling(self):
        out = run_example("heap_profiling.py")
        assert "aggregated by allocation site" in out
        assert "heap@make_leaf" in out or "heap@make_interior" in out

    def test_phase_adaptive_search(self):
        out = run_example("phase_adaptive_search.py")
        assert "Figure 5" in out
        assert "zero-miss retention" in out

    def test_cache_planning(self):
        out = run_example("cache_planning.py")
        assert "tuning advice" in out
        assert "thrashing" in out
        assert "streaming" in out
        assert "miss ratio" in out

    def test_pmu_portability(self):
        out = run_example("pmu_portability.py")
        assert "PMU capability matrix" in out
        assert "Intel Itanium" in out
        assert "multiplexed single counter" in out

    def test_search_convergence(self):
        out = run_example("search_convergence.py")
        assert "search convergence" in out
        assert "-> estimation" in out
        assert "converged in" in out
