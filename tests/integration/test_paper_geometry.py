"""Validation of the paper-scale cache preset.

The default experiments run a scaled 256 KiB cache; `CacheConfig.paper()`
restores the paper's 2 MB geometry. These tests confirm the documented
claim that the workloads' share structure survives the geometry change
when arrays are scaled up with it (DESIGN.md section 2).
"""

import pytest

from repro.cache import CacheConfig
from repro.sim.engine import Simulator
from repro.workloads.mgrid import Mgrid
from repro.workloads.tomcatv import Tomcatv


class TestPaperGeometry:
    @pytest.fixture(scope="class")
    def paper_sim(self):
        return Simulator(CacheConfig.paper(), seed=42)

    def test_preset_geometry(self):
        cfg = CacheConfig.paper()
        assert cfg.size == 2 * 1024 * 1024
        assert cfg.n_sets * cfg.assoc * cfg.line_size == cfg.size

    def test_tomcatv_shares_hold_at_paper_scale(self, paper_sim):
        """scale=8 grows every array with the 8x cache; shares persist."""
        res = paper_sim.run(Tomcatv(scale=8.0, seed=42, n_steps=3, rows_per_step=12))
        actual = res.actual
        assert actual.share_of("RX") == pytest.approx(0.225, abs=0.02)
        assert actual.share_of("RY") == pytest.approx(0.225, abs=0.02)
        assert actual.share_of("AA") == pytest.approx(0.15, abs=0.02)

    def test_mgrid_shares_hold_at_paper_scale(self, paper_sim):
        res = paper_sim.run(Mgrid(scale=8.0, seed=42, n_vcycles=2, fine_lines=8000))
        actual = res.actual
        assert actual.names()[:3] == ["U", "R", "V"]
        assert actual.share_of("V") == pytest.approx(0.188, abs=0.03)

    def test_sampling_works_at_paper_scale(self, paper_sim):
        from repro.core.sampling import SamplingProfiler

        wl = Tomcatv(scale=8.0, seed=42, n_steps=3, rows_per_step=12)
        res = paper_sim.run(wl, tool=SamplingProfiler(period=53, schedule="prime"))
        assert res.measured.share_of("RX") == pytest.approx(0.225, abs=0.02)
