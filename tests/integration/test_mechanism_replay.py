"""Differential replay over every registry workload (ISSUE-8 bit-identity).

Two contracts, each checked against every registered SPEC workload's
actual reference stream:

1. the scalar ``access_line`` path (which decorators drive) reproduces
   the chunked reference kernel reference-for-reference, and
2. a config with an *empty* mechanism stack builds and behaves exactly
   like today's undecorated cache.

Streams are the quick-mode workloads, capped, so the whole sweep stays
in tier-1 time.
"""

import dataclasses

import numpy as np
import pytest

from repro.cache import (
    CacheConfig,
    ReplacementPolicy,
    SetAssociativeCache,
    make_cache,
)
from repro.experiments.runner import _QUICK_KWARGS
from repro.workloads.registry import make_workload, workload_names

pytestmark = pytest.mark.mechanisms

CFG = CacheConfig(size=32 * 1024, line_size=64, assoc=4)
MAX_REFS = 120_000


def stream_of(app):
    """(addrs, writes) of the quick workload's stream, capped."""
    workload = make_workload(app, seed=11, **_QUICK_KWARGS.get(app, {}))
    addrs, writes, total = [], [], 0
    for block in workload.blocks():
        addrs.append(block.addrs)
        writes.append(
            block.writes
            if block.writes is not None
            else np.zeros(len(block.addrs), dtype=bool)
        )
        total += len(block.addrs)
        if total >= MAX_REFS:
            break
    return (
        np.concatenate(addrs)[:MAX_REFS],
        np.concatenate(writes)[:MAX_REFS],
    )


def scalar_replay(cache, addrs, writes):
    """Drive the leaf through the per-line decorator protocol."""
    lines = (addrs >> np.uint64(cache.config.line_bits)).tolist()
    flags = writes.tolist()
    cache.begin_stage()
    mask = np.empty(len(lines), dtype=bool)
    for i, line in enumerate(lines):
        mask[i] = cache.access_line(line, flags[i]).miss
    cache.commit_stage("app", len(lines))
    return mask


@pytest.mark.parametrize("app", workload_names())
def test_scalar_path_matches_chunked_kernel(app):
    addrs, writes = stream_of(app)
    chunked = SetAssociativeCache(CFG, backend="reference")
    res = chunked.access(addrs, writes=writes)
    scalar = SetAssociativeCache(CFG, backend="reference")
    mask = scalar_replay(scalar, addrs, writes)
    assert np.array_equal(mask, res.miss_mask)
    assert scalar.stats.__dict__ == chunked.stats.__dict__


@pytest.mark.parametrize("app", workload_names())
def test_empty_mechanism_stack_is_bit_identical(app):
    addrs, writes = stream_of(app)
    plain = make_cache(CFG, seed=2)
    decorated = make_cache(
        dataclasses.replace(CFG, mechanisms=()), seed=2
    )
    assert type(decorated) is type(plain)
    a = plain.access(addrs, writes=writes)
    b = decorated.access(addrs, writes=writes)
    assert np.array_equal(a.miss_mask, b.miss_mask)
    assert plain.stats.__dict__ == decorated.stats.__dict__


def test_scalar_path_matches_chunked_kernel_random_policy():
    """RANDOM replacement: the scalar loop consumes eviction draws
    exactly like the chunked kernel.

    Pool *refill policy* differs by design — the chunked kernel
    pre-sizes per chunk, the scalar path refills a fixed 4096 on empty
    so decorated stacks are split-invariant — so the pools are aligned
    up front and the stream kept short enough that neither side refills
    mid-run; what remains is a pure transcription check of the loop.
    """
    addrs, writes = stream_of("compress")
    cfg = dataclasses.replace(CFG, policy=ReplacementPolicy.RANDOM)
    chunked = SetAssociativeCache(cfg, seed=42, backend="reference")
    res = chunked.access(addrs, writes=writes)
    scalar = SetAssociativeCache(cfg, seed=42, backend="reference")
    scalar._kernel._ensure_rand_pool(len(addrs))
    mask = scalar_replay(scalar, addrs, writes)
    assert np.array_equal(mask, res.miss_mask)
