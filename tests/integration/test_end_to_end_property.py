"""Property-based end-to-end test: random profiles are recovered.

The library's central promise, as a single property: for *any* mix of
array shares, both techniques recover the ground-truth ranking (up to
near-ties) and the sampled shares converge to the actual shares.
"""

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig
from repro.core.report import max_share_error, rank_agreement
from repro.core.sampling import PeriodSchedule, SamplingProfiler
from repro.core.search import NWaySearch
from repro.sim.engine import Simulator
from repro.workloads.synthetic import SyntheticStreams


@st.composite
def share_specs(draw):
    n = draw(st.integers(2, 6))
    shares = draw(
        st.lists(
            st.integers(5, 60), min_size=n, max_size=n
        )
    )
    return {
        f"arr{i}": (256 * 1024, share) for i, share in enumerate(shares)
    }


def run_pair(spec, seed):
    sim = Simulator(CacheConfig(size=64 * 1024, assoc=4), seed=seed)

    def wl():
        return SyntheticStreams(
            spec, rounds=25, lines_per_round=5000, interleaved=True, seed=seed
        )

    base = sim.run(wl())
    period = max(16, base.stats.app_misses // 1500)
    sampled = sim.run(
        wl(),
        tool=SamplingProfiler(period=period, schedule=PeriodSchedule.PRIME, seed=seed),
    )
    return base, sampled


class TestRecoveryProperty:
    @settings(max_examples=8, deadline=None, derandomize=True)
    @given(share_specs(), st.integers(0, 1000))
    # Once-flaky falsifying examples, pinned so the tie-aware
    # rank_agreement keeps covering them. Both are near-tied pairs that
    # ~1500 samples cannot reliably order: seed 84 has arr0/arr1 actual
    # shares ~0.250/0.226 (2.4% gap); seed 934 has two arrays at
    # ~0.516/0.484 (3.3% gap).
    @example(
        spec={
            "arr0": (262144, 31),
            "arr1": (262144, 28),
            "arr2": (262144, 12),
            "arr3": (262144, 53),
        },
        seed=84,
    )
    @example(spec={"arr0": (262144, 42), "arr1": (262144, 45)}, seed=934)
    def test_sampling_recovers_any_profile(self, spec, seed):
        base, sampled = run_pair(spec, seed)
        assert max_share_error(base.actual, sampled.measured, k=6) < 0.04
        # tolerance=0.08: with ~1500 samples the difference of two shares
        # near 0.5 has sigma ~2.6%, so only gaps above ~3 sigma (~8%) are
        # reliably orderable; anything closer is rank-interchangeable.
        assert (
            rank_agreement(base.actual, sampled.measured, k=4, tolerance=0.08)
            >= 0.75
        )

    def test_search_recovers_distinct_profile(self):
        spec = {"w": (256 * 1024, 50), "x": (256 * 1024, 27), "y": (256 * 1024, 15),
                "z": (256 * 1024, 8)}
        sim = Simulator(CacheConfig(size=64 * 1024, assoc=4), seed=11)
        base = sim.run(
            SyntheticStreams(spec, rounds=40, lines_per_round=6000,
                             interleaved=True, seed=11)
        )
        interval = base.stats.app_cycles // 45
        searched = sim.run(
            SyntheticStreams(spec, rounds=40, lines_per_round=6000,
                             interleaved=True, seed=11),
            tool=NWaySearch(n=10, interval_cycles=interval),
        )
        assert searched.measured.names()[:4] == ["w", "x", "y", "z"]
        for name in spec:
            assert searched.measured.share_of(name) == pytest.approx(
                base.actual.share_of(name), abs=0.05
            )
