"""End-to-end conflict story: detect set conflicts, apply the suggested
padding, measure the win.

Two arrays whose bases are exactly one cache-stride apart collide
line-for-line in a direct-mapped cache even though both would fit
together. The conflict analysis must finger the pair and propose a pad;
laying the arrays out again with that pad must eliminate the conflict
misses. This is the remedy loop the advisor's CONFLICTING diagnosis
points users at.
"""

import numpy as np

from repro.analysis.conflicts import analyse_conflicts
from repro.cache.config import CacheConfig
from repro.cache.set_assoc import SetAssociativeCache
from repro.memory.address_space import AddressSpace
from repro.memory.object_map import ObjectMap
from repro.memory.symbol_table import SymbolTable

CFG = CacheConfig(size=32 * 1024, line_size=64, assoc=1)  # direct-mapped
ARRAY_BYTES = 8 * 1024  # two 8K arrays easily co-resident in 32K


def build(pad_between: int):
    """Lay out ping/pong with a gap that leaves them cache-aligned
    (pad 0 -> bases one cache-stride apart) or de-aligned."""
    aspace = AddressSpace()
    symbols = SymbolTable(aspace.data, default_align=64)
    ping = symbols.declare("ping", ARRAY_BYTES,
                           pad_after=CFG.size - ARRAY_BYTES + pad_between)
    pong = symbols.declare("pong", ARRAY_BYTES)
    omap = ObjectMap()
    omap.add_globals([ping, pong])
    omap.freeze_globals()
    return ping, pong, omap


def interleaved_stream(ping, pong, sweeps=40):
    a = np.arange(ping.base, ping.end, 64, dtype=np.uint64)
    b = np.arange(pong.base, pong.end, 64, dtype=np.uint64)
    pair = np.stack([a, b], axis=1).reshape(-1)
    return np.tile(pair, sweeps)


class TestConflictFixLoop:
    def test_aligned_layout_thrashes(self):
        ping, pong, _ = build(pad_between=0)
        assert CFG.set_of(ping.base) == CFG.set_of(pong.base)
        cache = SetAssociativeCache(CFG)
        stream = interleaved_stream(ping, pong)
        res = cache.access(stream)
        # Ping-pong eviction: essentially every access misses.
        assert res.n_misses / len(stream) > 0.95

    def test_analysis_suggests_padding(self):
        ping, pong, omap = build(pad_between=0)
        cache = SetAssociativeCache(CFG)
        stream = interleaved_stream(ping, pong, sweeps=4)
        res = cache.access(stream)
        report = analyse_conflicts(stream[res.miss_mask], omap, CFG)
        assert report.pairs
        top = report.pairs[0]
        assert {top[0], top[1]} == {"ping", "pong"}
        pad = report.padding.get("pong") or report.padding.get("ping")
        assert pad and pad % CFG.line_size == 0

    def test_padding_fixes_it(self):
        ping0, pong0, omap = build(pad_between=0)
        cache = SetAssociativeCache(CFG)
        stream = interleaved_stream(ping0, pong0, sweeps=4)
        res = cache.access(stream)
        report = analyse_conflicts(stream[res.miss_mask], omap, CFG)
        pad = report.padding.get("pong") or report.padding.get("ping")

        before_cache = SetAssociativeCache(CFG)
        before = before_cache.access(interleaved_stream(ping0, pong0))

        ping1, pong1, _ = build(pad_between=pad)
        assert CFG.set_of(ping1.base) != CFG.set_of(pong1.base)
        after_cache = SetAssociativeCache(CFG)
        after = after_cache.access(interleaved_stream(ping1, pong1))

        # The padded layout removes (nearly) all conflict misses: only the
        # cold fills remain.
        cold = (2 * ARRAY_BYTES) // CFG.line_size
        assert after.n_misses <= cold * 2
        assert after.n_misses < before.n_misses / 20

    def test_higher_associativity_also_fixes_it(self):
        """The classic alternative remedy: 2-way associativity absorbs a
        two-array conflict without relayout."""
        ping, pong, _ = build(pad_between=0)
        assoc2 = SetAssociativeCache(
            CacheConfig(size=32 * 1024, line_size=64, assoc=2)
        )
        res = assoc2.access(interleaved_stream(ping, pong))
        cold = (2 * ARRAY_BYTES) // 64
        assert res.n_misses == cold
