"""Compressed-trace importer: sniffing, readers, round trips.

Formats are identified by content (magic bytes), never extension; every
import path ends at the canonical ``.npz`` archive and a re-load replays
the identical addresses, write masks and block structure.
"""

from __future__ import annotations

import gzip
import io

import numpy as np
import pytest

from repro.errors import TraceError
from repro.sim.blocks import ReferenceBlock
from repro.sim.trace_io import load_trace, save_trace
from repro.workloads.trace import (
    derive_layout,
    import_trace,
    load_any_trace,
    read_text_trace,
    sniff_trace_format,
)

TEXT = "# captured externally\nR 0x1000\nW 0x1040  # store\nr 4224\nW 0x20000\n\n"
ADDRS = [0x1000, 0x1040, 4224, 0x20000]
WRITES = [False, True, False, True]


@pytest.fixture
def text_trace(tmp_path):
    path = tmp_path / "capture.trace"
    path.write_text(TEXT)
    return path


@pytest.fixture
def gz_text_trace(tmp_path):
    path = tmp_path / "capture.trace.gz"
    with gzip.open(path, "wt") as fh:
        fh.write(TEXT)
    return path


@pytest.fixture
def npz_trace(tmp_path, text_trace):
    path = tmp_path / "canon.npz"
    save_trace(path, read_text_trace(text_trace))
    return path


class TestSniffing:
    def test_by_content_not_extension(
        self, tmp_path, text_trace, gz_text_trace, npz_trace
    ):
        assert sniff_trace_format(text_trace) == "text"
        assert sniff_trace_format(gz_text_trace) == "text.gz"
        assert sniff_trace_format(npz_trace) == "npz"
        # A gzip'd archive keeps its identity under a misleading name.
        disguised = tmp_path / "totally_a_text_file.trace"
        disguised.write_bytes(gzip.compress(npz_trace.read_bytes()))
        assert sniff_trace_format(disguised) == "npz.gz"

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="cannot read"):
            sniff_trace_format(tmp_path / "nope")


class TestTextReader:
    def test_parses_addresses_comments_and_writes(self, text_trace):
        blocks = read_text_trace(text_trace)
        assert len(blocks) == 1
        assert blocks[0].addrs.tolist() == ADDRS
        assert blocks[0].writes.tolist() == WRITES

    def test_read_only_traces_have_no_mask(self):
        blocks = read_text_trace(io.StringIO("R 0x40\nR 0x80\n"))
        assert blocks[0].writes is None

    def test_chunks_long_streams(self):
        text = "\n".join(f"R {i * 64}" for i in range(300))
        blocks = read_text_trace(io.StringIO(text), block_refs=128)
        assert [len(b.addrs) for b in blocks] == [128, 128, 44]
        joined = np.concatenate([b.addrs for b in blocks])
        assert joined.tolist() == [i * 64 for i in range(300)]

    @pytest.mark.parametrize(
        ("line", "match"),
        [
            ("X 0x40", "expected"),
            ("R", "expected"),
            ("R 0x40 0x80", "expected"),
            ("R zebra", "bad address"),
            ("# nothing else", "no references"),
        ],
    )
    def test_rejects_malformed_lines(self, line, match):
        with pytest.raises(TraceError, match=match):
            read_text_trace(io.StringIO(line + "\n"))


class TestRoundTrips:
    @pytest.mark.parametrize("fmt", ["text", "text.gz", "npz", "npz.gz"])
    def test_import_any_format_is_exact(
        self, fmt, tmp_path, text_trace, gz_text_trace, npz_trace
    ):
        source = {
            "text": text_trace,
            "text.gz": gz_text_trace,
            "npz": npz_trace,
        }.get(fmt)
        if source is None:
            source = tmp_path / "canon.npz.gz"
            source.write_bytes(gzip.compress(npz_trace.read_bytes()))
        expected = load_any_trace(source)
        out = import_trace(source, tmp_path / f"out-{fmt.replace('.', '_')}")
        assert out.suffix == ".npz" and out.exists()
        replayed = load_trace(out)
        assert len(replayed) == len(expected)
        for a, b in zip(replayed, expected):
            assert np.array_equal(a.addrs, b.addrs)
            assert (a.writes is None) == (b.writes is None)
            if a.writes is not None:
                assert np.array_equal(a.writes, b.writes)
            assert a.label == b.label
            assert a.cycles_per_ref == b.cycles_per_ref


class TestDeriveLayout:
    def test_clusters_by_address_gap(self):
        blocks = [
            ReferenceBlock(
                addrs=np.array(
                    [0x1000, 0x1040, 0x1080, 0x200000, 0x200040],
                    dtype=np.uint64,
                ),
                cycles_per_ref=1.0,
            )
        ]
        layout = derive_layout(blocks)
        assert layout == {"t0": (0x1000, 192), "t1": (0x200000, 128)}

    def test_keeps_the_largest_clusters(self):
        lines = [i * 64 for i in range(10)] + [0x900000]
        blocks = [
            ReferenceBlock(
                addrs=np.array(lines, dtype=np.uint64), cycles_per_ref=1.0
            )
        ]
        assert list(derive_layout(blocks, max_objects=1)) == ["t0"]
        assert derive_layout(blocks, max_objects=1)["t0"] == (0, 640)
