"""Per-application workload tests: structure, shares, determinism.

Share tolerances are loose bands around the paper's Table 1 values —
each workload was engineered to land near them; these tests pin the
behaviour against regressions.
"""

import numpy as np
import pytest

from repro.cache import CacheConfig
from repro.errors import WorkloadError
from repro.sim.engine import Simulator
from repro.workloads import registry
from repro.workloads.ijpeg import Ijpeg
from repro.workloads.tomcatv import Tomcatv

QUICK = {
    "tomcatv": {"n_steps": 3, "rows_per_step": 12},
    "swim": {"n_steps": 2, "lines_per_array_per_step": 1200},
    "su2cor": {"total_lines": 120_000, "slices_per_era": 18},
    "mgrid": {"n_vcycles": 3, "fine_lines": 8_000},
    "applu": {"n_iterations": 5, "jacobian_lines": 4_000},
    "compress": {"input_lines": 20_000},
    "ijpeg": {"image_lines": 15_000},
}

#: (object, expected share, tolerance) per app — from the paper's Table 1.
EXPECTED = {
    "tomcatv": [("RX", 0.225, 0.02), ("RY", 0.225, 0.02), ("AA", 0.15, 0.02)],
    "swim": [("CU", 0.077, 0.01), ("VOLD", 0.077, 0.01)],
    "su2cor": [("U", 0.571, 0.05), ("R", 0.070, 0.02), ("S", 0.066, 0.02)],
    "mgrid": [("U", 0.408, 0.03), ("R", 0.404, 0.03), ("V", 0.188, 0.03)],
    "applu": [("a", 0.229, 0.02), ("d", 0.174, 0.02), ("rsd", 0.069, 0.015)],
    "compress": [("orig_text_buffer", 0.63, 0.04), ("comp_text_buffer", 0.356, 0.04)],
    "ijpeg": [("0x141020000", 0.847, 0.05), ("jpeg_compressed_data", 0.125, 0.03)],
}


@pytest.fixture(scope="module")
def baselines():
    sim = Simulator(CacheConfig(size=256 * 1024, assoc=4), seed=11)
    results = {}
    for name in registry.workload_names():
        wl = registry.make_workload(name, seed=11, **QUICK[name])
        results[name] = sim.run(wl)
    return results


class TestRegistry:
    def test_names(self):
        assert registry.workload_names() == [
            "tomcatv", "swim", "su2cor", "mgrid", "applu", "compress", "ijpeg",
        ]

    def test_unknown_rejected(self):
        with pytest.raises(WorkloadError):
            registry.make_workload("nachos")

    def test_factory_kwargs(self):
        wl = registry.make_workload("tomcatv", n_steps=2)
        assert wl.n_steps == 2


@pytest.mark.parametrize("app", list(EXPECTED))
class TestShares:
    def test_paper_shares(self, baselines, app):
        actual = baselines[app].actual
        for name, expected, tolerance in EXPECTED[app]:
            got = actual.share_of(name)
            assert got == pytest.approx(expected, abs=tolerance), (
                f"{app}.{name}: got {got:.3f}, paper {expected:.3f}"
            )

    def test_top_object_matches_paper(self, baselines, app):
        top = baselines[app].actual.names()[0]
        paper_top = EXPECTED[app][0][0]
        # swim's arrays tie at 7.7% — any of them may rank first.
        if app == "swim":
            assert baselines[app].actual.share_of(top) == pytest.approx(0.077, abs=0.01)
        else:
            assert top == paper_top


class TestMissRateOrdering:
    def test_paper_rate_ordering(self, baselines):
        """Section 3.2: ijpeg (144/Mcyc) < compress (361) < mgrid (6,827)
        < the other FP codes."""
        rates = {
            app: res.stats.miss_rate_per_mcycle for app, res in baselines.items()
        }
        assert rates["ijpeg"] < rates["compress"] < rates["mgrid"]
        for app in ("tomcatv", "swim", "su2cor", "applu"):
            assert rates[app] > rates["mgrid"]


class TestDeterminism:
    def test_same_seed_same_stream(self):
        def digest(wl):
            return [hash(block.addrs.tobytes()) for block in wl.blocks()]

        a = registry.make_workload("compress", seed=5, input_lines=5_000)
        b = registry.make_workload("compress", seed=5, input_lines=5_000)
        assert digest(a) == digest(b)


class TestStructure:
    def test_tomcatv_interleaves_rx_ry(self):
        """The residual blocks must strictly alternate RX/RY (the
        resonance mechanism)."""
        wl = Tomcatv(n_steps=1, rows_per_step=2)
        wl.prepare()
        rx, ry = wl.symbols["RX"], wl.symbols["RY"]
        residual = [b for b in wl.blocks() if b.label == "residual"][0]
        # Strip the intra-line extras: take one address per line group.
        line_addrs = residual.addrs[:: 2]
        owners = ["RX" if rx.contains(int(a)) else "RY" for a in line_addrs[:20]]
        assert owners == ["RX", "RY"] * 10

    def test_ijpeg_paper_block_names(self):
        wl = Ijpeg(image_lines=100)
        wl.prepare()
        names = {o.name for o in wl.object_map.all_objects()}
        assert "0x141020000" in names
        assert "0x14101e000" in names

    def test_applu_has_silent_abc_phases(self, baselines):
        """Figure 5: some blocks touch rsd while a/b/c are silent."""
        wl = registry.make_workload("applu", seed=11, **QUICK["applu"])
        wl.prepare()
        labels = {block.label for block in wl.blocks()}
        assert "rhs" in labels and "jacld" in labels

    def test_all_blocks_inside_known_objects(self, baselines):
        """Workload streams must attribute ~fully to declared objects."""
        for app, res in baselines.items():
            unattributed = res.ground_truth.unattributed
            assert unattributed / max(1, res.ground_truth.total_misses) < 0.001, app

    def test_describe(self):
        wl = registry.make_workload("mgrid")
        text = wl.describe()
        assert "mgrid" in text and "objects" in text
