"""Tests for the Workload base class contract."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.base import Workload
from repro.workloads.synthetic import SyntheticStreams


class Minimal(Workload):
    name = "minimal"
    cycles_per_ref = 3.0

    def _declare(self):
        self.symbols.declare("only", 4096)

    def _generate(self):
        obj = self.symbols["only"]
        yield self.block(np.arange(obj.base, obj.end, 64, dtype=np.uint64))


class TestLifecycle:
    def test_prepare_idempotent(self):
        wl = Minimal()
        wl.prepare()
        omap = wl.object_map
        wl.prepare()
        assert wl.object_map is omap

    def test_blocks_triggers_prepare(self):
        wl = Minimal()
        blocks = list(wl.blocks())
        assert wl.object_map is not None
        assert len(blocks) == 1

    def test_globals_frozen_after_prepare(self):
        """The object map's static-variable table locks after load."""
        from repro.memory.objects import MemoryObject

        wl = Minimal()
        wl.prepare()
        with pytest.raises(RuntimeError):
            wl.object_map.add_global(MemoryObject("late", base=0x1_3000_0000, size=64))

    def test_bad_scale(self):
        with pytest.raises(WorkloadError):
            SyntheticStreams({"a": (64, 1)}, scale=0)

    def test_scaled_rounds_up(self):
        wl = Minimal(scale=1.0)
        assert wl.scaled(100) == 4096          # min alignment
        assert wl.scaled(5000) == 8192
        wl2 = Minimal(scale=2.0)
        assert wl2.scaled(5000) == 12288

    def test_block_helper_uses_cpr(self):
        wl = Minimal()
        wl.prepare()
        block = next(iter(wl._generate()))
        assert block.cycles_per_ref == 3.0

    def test_describe_mentions_name(self):
        assert "minimal" in Minimal().describe()
