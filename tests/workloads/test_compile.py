"""Stream compilation: fingerprints, caching, freezing and safety gates."""

import numpy as np
import pytest

from repro.workloads.base import Workload
from repro.workloads.compile import (
    CompiledStream,
    StreamCompileError,
    compile_workload,
    compiled_stream_for,
    stream_fingerprint,
    workload_params,
)
from repro.workloads.registry import make_workload
from repro.workloads.synthetic import TreeChaser


def _tomcatv(**overrides):
    kwargs = {"n_steps": 2, "rows_per_step": 4, "seed": 5}
    kwargs.update(overrides)
    return make_workload("tomcatv", **kwargs)


class TestFingerprint:
    def test_stable_for_equal_construction(self):
        assert stream_fingerprint(_tomcatv()) == stream_fingerprint(_tomcatv())

    @pytest.mark.parametrize(
        "override",
        [{"n_steps": 3}, {"rows_per_step": 8}, {"seed": 6}, {"scale": 2.0}],
    )
    def test_any_parameter_change_changes_it(self, override):
        assert stream_fingerprint(_tomcatv()) != stream_fingerprint(
            _tomcatv(**override)
        )

    def test_params_read_back_every_constructor_field(self):
        params = workload_params(_tomcatv())
        # Base-class params included; values round-tripped off the instance.
        assert params["n_steps"] == 2
        assert params["rows_per_step"] == 4
        assert params["seed"] == 5
        assert params["scale"] == 1.0

    def test_param_not_stored_as_attribute_is_an_error(self):
        class Sneaky(Workload):
            name = "sneaky"

            def __init__(self, knob: int = 3) -> None:
                super().__init__()
                # Deliberately NOT storing `knob` (breaks RPL602's
                # round-trip convention).
                del knob

            def _declare(self):
                pass

            def _generate(self):
                return iter(())

        with pytest.raises(StreamCompileError, match="knob"):
            workload_params(Sneaky())


class TestCompile:
    def test_blocks_match_the_generator_exactly(self):
        workload = _tomcatv()
        stream = compile_workload(workload)
        fresh = _tomcatv()
        generated = list(fresh.blocks())
        assert len(stream.blocks) == len(generated)
        assert len(stream) == sum(len(b) for b in generated)
        for frozen, live in zip(stream.blocks, generated):
            assert np.array_equal(frozen.addrs, live.addrs)
            assert frozen.cycles_per_ref == live.cycles_per_ref
            assert frozen.extra_cycles == live.extra_cycles

    def test_arrays_are_frozen(self):
        stream = compile_workload(_tomcatv())
        for block in stream.blocks:
            assert not block.addrs.flags.writeable
            with pytest.raises(ValueError, match="read-only"):
                block.addrs[0] = 0

    def test_workload_is_reset_after_compilation(self):
        workload = _tomcatv()
        compile_workload(workload)
        assert not workload.consumed

    def test_unsafe_class_is_refused(self):
        chaser = TreeChaser(n_nodes=50, n_steps=2, refs_per_step=100, seed=5)
        with pytest.raises(StreamCompileError, match="compiled_stream_safe"):
            compile_workload(chaser)

    def test_dynamic_churn_guard_catches_mid_stream_allocation(self):
        class Churner(Workload):
            name = "churner"

            def _declare(self):
                pass

            def _generate(self):
                obj = self.heap.malloc(4096, name="mid-stream")
                yield self.block(
                    np.arange(obj.base, obj.base + 512, 8, dtype=np.uint64)
                )

        with pytest.raises(StreamCompileError, match="heap alloc"):
            compile_workload(Churner())


class TestStreamCache:
    def test_round_trip_through_the_on_disk_cache(self, tmp_path):
        first = compiled_stream_for(_tomcatv(), tmp_path)
        assert any((tmp_path / "streams").iterdir())
        second = compiled_stream_for(_tomcatv(), tmp_path)
        assert second.fingerprint == first.fingerprint
        assert len(second.blocks) == len(first.blocks)
        for a, b in zip(first.blocks, second.blocks):
            assert np.array_equal(a.addrs, b.addrs)

    def test_cache_hit_arrays_are_frozen(self, tmp_path):
        compiled_stream_for(_tomcatv(), tmp_path)
        hit = compiled_stream_for(_tomcatv(), tmp_path)
        for block in hit.blocks:
            assert not block.addrs.flags.writeable

    def test_different_params_get_different_entries(self, tmp_path):
        a = compiled_stream_for(_tomcatv(), tmp_path)
        b = compiled_stream_for(_tomcatv(n_steps=3), tmp_path)
        assert a.fingerprint != b.fingerprint

    def test_none_cache_dir_compiles_without_caching(self):
        stream = compiled_stream_for(_tomcatv(), None)
        assert isinstance(stream, CompiledStream)
