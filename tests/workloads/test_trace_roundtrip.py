"""Trace format write -> read round trip + mechanism-sweep safety.

Pins the ``.npz`` contract documented in :mod:`repro.workloads.trace`:
a saved trace replays *bit-identically* to its in-memory blocks through
the full simulation stack, including under mechanism-decorated caches —
the property that makes trace ingestion sound for ``repro mechanisms``
sweeps (ROADMAP item 4).
"""

import dataclasses

import numpy as np
import pytest

from repro.cache import CacheConfig
from repro.memory.address_space import DATA_BASE
from repro.sim.blocks import ReferenceBlock
from repro.sim.engine import Simulator
from repro.sim.trace_io import load_trace, save_trace
from repro.workloads.base import Workload
from repro.workloads.trace import TraceWorkload

pytestmark = pytest.mark.mechanisms

BASE = DATA_BASE + 0x4000
LAYOUT = {"table": (BASE, 64 * 1024)}


def make_blocks(seed=13):
    rng = np.random.default_rng(seed)
    seq = np.arange(BASE, BASE + 64 * 400, 64, dtype=np.uint64)
    rand = (
        np.uint64(BASE)
        + rng.integers(0, 1024, size=600).astype(np.uint64) * np.uint64(64)
    )
    return [
        ReferenceBlock(addrs=seq, cycles_per_ref=4.0, label="stream"),
        ReferenceBlock(
            addrs=rand,
            cycles_per_ref=6.0,
            writes=rng.random(600) < 0.3,
            label="scatter",
            extra_cycles=17,
        ),
    ]


def fingerprint(result):
    return (
        result.stats.app_refs,
        result.stats.app_misses,
        result.stats.app_cycles,
        [(s.name, s.count) for s in result.actual.shares],
    )


def test_write_read_round_trip_preserves_every_field(tmp_path):
    blocks = make_blocks()
    path = tmp_path / "t.npz"
    save_trace(path, blocks)
    loaded = load_trace(path)
    assert len(loaded) == len(blocks)
    for orig, back in zip(blocks, loaded):
        assert np.array_equal(back.addrs, orig.addrs)
        assert back.addrs.dtype == np.uint64
        assert back.cycles_per_ref == orig.cycles_per_ref
        assert back.label == orig.label
        assert back.extra_cycles == orig.extra_cycles
        if orig.writes is None:
            assert back.writes is None
        else:
            assert np.array_equal(back.writes, orig.writes)


def test_file_replay_bit_identical_to_in_memory(tmp_path):
    path = tmp_path / "t.npz"
    save_trace(path, make_blocks())
    cfg = CacheConfig(size=8 * 1024, assoc=2)
    mem = Simulator(cfg, seed=3).run(
        TraceWorkload(make_blocks(), layout=LAYOUT)
    )
    file = Simulator(cfg, seed=3).run(TraceWorkload(path, layout=LAYOUT))
    assert fingerprint(file) == fingerprint(mem)


def test_trace_replay_under_mechanism_stack(tmp_path):
    """A recorded trace sweeps soundly: identical stream either way, so
    baseline-minus-decorated attribution is well defined."""
    path = tmp_path / "t.npz"
    save_trace(path, make_blocks())
    base_cfg = CacheConfig(size=8 * 1024, assoc=2)
    deco_cfg = dataclasses.replace(base_cfg, mechanisms="vc+sb")
    base = Simulator(base_cfg, seed=3).run(TraceWorkload(path, layout=LAYOUT))
    deco = Simulator(deco_cfg, seed=3).run(TraceWorkload(path, layout=LAYOUT))
    assert deco.stats.app_refs == base.stats.app_refs
    assert deco.stats.app_misses <= base.stats.app_misses
    assert deco.cache_stats.mechanism["sb_hits"] >= 0
    rescued = {
        s.name: next(
            b.count for b in base.actual.shares if b.name == s.name
        )
        - s.count
        for s in deco.actual.shares
    }
    assert sum(rescued.values()) == base.stats.app_misses - deco.stats.app_misses


def test_mechanism_sweep_safe_markers():
    assert Workload.mechanism_sweep_safe is True
    assert TraceWorkload.mechanism_sweep_safe is True
    assert TraceWorkload.compiled_stream_safe is False
