"""Tests for the synthetic workloads."""

import pytest

from repro.cache import CacheConfig
from repro.errors import WorkloadError
from repro.sim.engine import Simulator
from repro.workloads.synthetic import FigureTwoLayout, SyntheticStreams, TreeChaser


@pytest.fixture
def sim64():
    return Simulator(CacheConfig(size=64 * 1024), seed=8)


class TestSyntheticStreams:
    def test_shares_converge_to_spec(self, sim64):
        wl = SyntheticStreams(
            {"A": (256 * 1024, 60), "B": (256 * 1024, 40)}, rounds=10, seed=8
        )
        res = sim64.run(wl)
        assert res.actual.share_of("A") == pytest.approx(0.60, abs=0.02)
        assert res.actual.share_of("B") == pytest.approx(0.40, abs=0.02)

    def test_interleaved_preserves_shares(self, sim64):
        wl = SyntheticStreams(
            {"A": (256 * 1024, 70), "B": (256 * 1024, 30)},
            rounds=10,
            interleaved=True,
            seed=8,
        )
        res = sim64.run(wl)
        assert res.actual.share_of("A") == pytest.approx(0.70, abs=0.03)

    def test_empty_spec_rejected(self):
        with pytest.raises(WorkloadError):
            SyntheticStreams({})


class TestFigureTwoLayout:
    def test_shares(self, sim64):
        res = sim64.run(FigureTwoLayout(seed=8, rounds=30))
        actual = res.actual
        assert actual.names()[0] == "E"
        assert actual.share_of("E") == pytest.approx(0.35, abs=0.02)
        # Upper region {A,B,C,D} aggregates ~60%.
        upper = sum(actual.share_of(n) for n in "ABCD")
        assert upper == pytest.approx(0.60, abs=0.03)

    def test_midpoint_is_de_boundary(self):
        wl = FigureTwoLayout()
        wl.prepare()
        objs = {o.name: o for o in wl.object_map.all_objects()}
        lo = objs["A"].base
        hi = objs["F"].end
        midpoint = (lo + hi) // 2
        assert objs["E"].base - 64 * 8 <= midpoint <= objs["E"].base + 64 * 8


class TestTreeChaser:
    def test_heap_blocks_and_sites(self, sim64):
        wl = TreeChaser(seed=8, n_nodes=300, n_steps=6, refs_per_step=2000)
        res = sim64.run(wl)
        sites = {
            o.alloc_site
            for o in wl.object_map.all_objects()
            if o.alloc_site is not None
        }
        assert {"make_interior", "make_leaf", "side_table"} <= sites
        assert res.stats.app_misses > 0

    def test_churn_keeps_map_consistent(self, sim64):
        wl = TreeChaser(seed=8, n_nodes=300, n_steps=8, refs_per_step=1000)
        sim64.run(wl)
        wl.heap.check_invariants()

    def test_aggregation_by_site(self, sim64):
        from repro.core.aggregate import aggregate_heap_by_site

        wl = TreeChaser(seed=8, n_nodes=300, n_steps=6, refs_per_step=2000)
        res = sim64.run(wl)
        agg = aggregate_heap_by_site(res.actual)
        names = agg.names()
        assert any(n.startswith("heap@") for n in names)
        # Aggregation strictly reduces the entry count.
        assert len(agg) < len(res.actual)
