"""Tests for the trace-replay and recursive (stack) workloads."""

import numpy as np
import pytest

from repro.cache import CacheConfig
from repro.core.sampling import SamplingProfiler
from repro.errors import WorkloadError
from repro.memory.address_space import DATA_BASE, HEAP_BASE
from repro.sim.blocks import ReferenceBlock
from repro.sim.engine import Simulator
from repro.sim.trace_io import save_trace
from repro.workloads.trace import RecursiveCalls, TraceWorkload


def make_blocks():
    a_base = DATA_BASE + 0x1000
    return [
        ReferenceBlock(
            addrs=np.arange(a_base, a_base + 64 * 500, 64, dtype=np.uint64),
            cycles_per_ref=4.0,
        ),
        ReferenceBlock(
            addrs=np.arange(HEAP_BASE, HEAP_BASE + 64 * 300, 64, dtype=np.uint64),
            cycles_per_ref=4.0,
        ),
    ]


LAYOUT = {
    "alpha": (DATA_BASE + 0x1000, 64 * 500),
    "hblock": (HEAP_BASE, 64 * 512),
}


class TestTraceWorkload:
    def test_replay_in_memory(self):
        sim = Simulator(CacheConfig(size=16 * 1024), seed=0)
        wl = TraceWorkload(make_blocks(), layout=LAYOUT)
        res = sim.run(wl)
        assert res.actual.rank_of("alpha") == 1
        assert res.actual.share_of("alpha") == pytest.approx(500 / 800, abs=0.01)
        assert res.actual.share_of("hblock") == pytest.approx(300 / 800, abs=0.01)

    def test_replay_from_file(self, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(path, make_blocks())
        sim = Simulator(CacheConfig(size=16 * 1024), seed=0)
        res = sim.run(TraceWorkload(path, layout=LAYOUT))
        assert res.stats.app_refs == 800

    def test_empty_layout_rejected(self):
        with pytest.raises(WorkloadError):
            TraceWorkload(make_blocks(), layout={})

    def test_out_of_segment_object_rejected(self):
        wl = TraceWorkload(make_blocks(), layout={"bad": (0x10, 64)})
        with pytest.raises(WorkloadError):
            wl.prepare()

    def test_profiling_a_trace(self):
        sim = Simulator(CacheConfig(size=16 * 1024), seed=0)
        wl = TraceWorkload(make_blocks(), layout=LAYOUT)
        res = sim.run(wl, tool=SamplingProfiler(period=13))
        assert res.measured.rank_of("alpha") == 1


class TestRecursiveCalls:
    def _run(self, tool=None, **kw):
        sim = Simulator(CacheConfig(size=64 * 1024), seed=9)
        return sim.run(RecursiveCalls(seed=9, depth=8, repeats=8, **kw), tool=tool)

    def test_stack_instances_aggregate(self):
        res = self._run()
        names = res.actual.names()
        assert "fib:frame_buf" in names
        assert "memo_table" in names
        # Every recursion level's buffer folded into one entry.
        assert sum(1 for n in names if n.startswith("fib:frame_buf")) == 1

    def test_stack_unwinds_cleanly(self):
        wl = RecursiveCalls(seed=9, depth=6, repeats=3)
        sim = Simulator(CacheConfig(size=64 * 1024), seed=9)
        sim.run(wl)
        assert wl.stack.depth == 0

    def test_sampling_attributes_stack_vars(self):
        res = self._run(tool=SamplingProfiler(period=29, schedule="prime"))
        measured = res.measured
        assert measured.rank_of("fib:frame_buf") == 1
        actual = res.actual.share_of("fib:frame_buf")
        assert measured.share_of("fib:frame_buf") == pytest.approx(actual, abs=0.06)

    def test_deeper_recursion_more_stack_share(self):
        shallow = self._run()
        sim = Simulator(CacheConfig(size=64 * 1024), seed=9)
        deep = sim.run(RecursiveCalls(seed=9, depth=16, repeats=8))
        assert (
            deep.actual.share_of("fib:frame_buf")
            >= shallow.actual.share_of("fib:frame_buf") - 0.02
        )
