"""Tests for vectorised access-pattern generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.objects import MemoryObject
from repro.util.rng import make_rng
from repro.workloads.patterns import (
    interleave,
    intra_line_hits,
    random_lines,
    repeat_window,
    stream_lines,
    strided_lines,
)

OBJ = MemoryObject("arr", base=0x1000_0000, size=64 * 1024)


class TestStreamLines:
    def test_sequential(self):
        addrs = stream_lines(OBJ, 4)
        assert addrs.tolist() == [OBJ.base + i * 64 for i in range(4)]

    def test_start_offset(self):
        addrs = stream_lines(OBJ, 2, start_line=10)
        assert addrs[0] == OBJ.base + 640

    def test_wraps_within_object(self):
        capacity = OBJ.size // 64
        addrs = stream_lines(OBJ, capacity + 5)
        assert addrs[capacity] == OBJ.base  # wrapped
        assert all(OBJ.contains(int(a)) for a in addrs)

    def test_dtype(self):
        assert stream_lines(OBJ, 3).dtype == np.uint64


class TestStridedLines:
    def test_stride(self):
        addrs = strided_lines(OBJ, stride_lines=4, count=3)
        assert addrs.tolist() == [OBJ.base, OBJ.base + 256, OBJ.base + 512]

    def test_stays_in_object(self):
        addrs = strided_lines(OBJ, stride_lines=7, count=1000)
        assert all(OBJ.contains(int(a)) for a in addrs)


class TestRepeatWindow:
    def test_tiles(self):
        addrs = repeat_window(OBJ, window_lines=3, sweeps=2)
        assert len(addrs) == 6
        assert np.array_equal(addrs[:3], addrs[3:])


class TestRandomLines:
    def test_in_object(self):
        addrs = random_lines(OBJ, 500, make_rng(0))
        assert all(OBJ.contains(int(a)) for a in addrs)

    def test_hot_fraction_concentrates(self):
        addrs = random_lines(
            OBJ, 5000, make_rng(0), hot_fraction=0.95, hot_lines=8
        )
        hot_limit = OBJ.base + 8 * 64
        hot = (addrs < hot_limit).mean()
        assert hot > 0.9

    def test_deterministic(self):
        a = random_lines(OBJ, 100, make_rng(1))
        b = random_lines(OBJ, 100, make_rng(1))
        assert np.array_equal(a, b)


class TestInterleave:
    def test_round_robin(self):
        a = np.array([1, 3, 5], dtype=np.uint64)
        b = np.array([2, 4, 6], dtype=np.uint64)
        assert interleave(a, b).tolist() == [1, 2, 3, 4, 5, 6]

    def test_three_way(self):
        a = np.array([1], dtype=np.uint64)
        b = np.array([2], dtype=np.uint64)
        c = np.array([3], dtype=np.uint64)
        assert interleave(a, b, c).tolist() == [1, 2, 3]

    def test_trims_to_shortest(self):
        a = np.array([1, 3, 5], dtype=np.uint64)
        b = np.array([2], dtype=np.uint64)
        assert interleave(a, b).tolist() == [1, 2]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            interleave()

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 50), st.integers(2, 5))
    def test_alternation_property(self, n, k):
        """Element i of interleave comes from stream i % k."""
        streams = [
            np.full(n, 1000 * s, dtype=np.uint64) + np.arange(n, dtype=np.uint64)
            for s in range(k)
        ]
        out = interleave(*streams)
        for i, value in enumerate(out):
            assert value // 1000 == i % k


class TestIntraLineHits:
    def test_expansion(self):
        addrs = np.array([0, 64], dtype=np.uint64)
        out = intra_line_hits(addrs, extra_per_line=2)
        assert len(out) == 6
        # First touch of each group is the original line address.
        assert out[0] == 0 and out[3] == 64

    def test_extras_stay_in_line(self):
        addrs = np.array([128], dtype=np.uint64)
        out = intra_line_hits(addrs, extra_per_line=10)
        assert all(128 <= a < 192 for a in out)

    def test_zero_extras_identity(self):
        addrs = np.array([1, 2], dtype=np.uint64)
        assert intra_line_hits(addrs, 0) is addrs
