"""Structure-specific tests for each SPEC95 workload model.

These pin the *engineered* behaviours each model exists to provide (see
the module docstrings): the interleavings, phases, eras and allocation
recipes that the paper's experiments depend on. The share-level tests
live in test_workloads.py; these go one level deeper.
"""

import numpy as np
import pytest

from repro.workloads.applu import Applu
from repro.workloads.compress_ import Compress
from repro.workloads.ijpeg import Ijpeg
from repro.workloads.mgrid import Mgrid
from repro.workloads.su2cor import _ERAS, Su2cor
from repro.workloads.swim import _ARRAYS as SWIM_ARRAYS
from repro.workloads.swim import Swim
from repro.workloads.tomcatv import Tomcatv


def block_owner_counts(wl, labels=None):
    """name -> number of line-addresses per object across the stream."""
    wl.prepare()
    snapshot = wl.object_map.snapshot()
    counts = {}
    for block in wl.blocks():
        if labels is not None and block.label not in labels:
            continue
        per = snapshot.count_by_object(block.addrs)
        for obj, c in zip(snapshot.objects, per):
            if c:
                counts[obj.name] = counts.get(obj.name, 0) + int(c)
    return counts


class TestTomcatv:
    def test_residual_parity_flips_are_irregular(self):
        """Rows 0 and 3 of every 12 carry the extra AA line (the phase
        flip that makes the resonance partial)."""
        wl = Tomcatv(n_steps=1, rows_per_step=12)
        wl.prepare()
        coeff_lengths = [len(b) for b in wl.blocks() if b.label == "coeff"]
        base = min(coeff_lengths)
        longer = [i for i, n in enumerate(coeff_lengths) if n > base]
        assert longer == [0, 3]

    def test_seven_arrays(self):
        wl = Tomcatv()
        wl.prepare()
        assert len(wl.symbols) == 7


class TestSwim:
    def test_thirteen_equal_arrays(self):
        wl = Swim(n_steps=2, lines_per_array_per_step=400)
        counts = block_owner_counts(wl)
        assert set(counts) == set(SWIM_ARRAYS)
        volumes = set(counts.values())
        assert len(volumes) == 1  # perfectly tied shares

    def test_group_labels(self):
        wl = Swim(n_steps=1, lines_per_array_per_step=400)
        wl.prepare()
        labels = {b.label for b in wl.blocks()}
        assert any("CU" in l for l in labels)
        assert any("UOLD" in l for l in labels)


class TestSu2cor:
    def test_three_eras_sum_to_one(self):
        assert sum(frac for frac, _ in _ERAS) == pytest.approx(1.0)
        for _frac, shares in _ERAS:
            assert sum(shares.values()) == pytest.approx(100.0, abs=0.5)

    def test_r_cold_in_final_era(self):
        assert "R" not in _ERAS[2][1]

    def test_era_ordering_in_stream(self):
        """R's references must all fall in the first ~60% of the stream."""
        wl = Su2cor(total_lines=60_000, slices_per_era=10)
        wl.prepare()
        r = wl.symbols["R"]
        positions = []
        pos = 0
        for block in wl.blocks():
            inside = (block.addrs >= np.uint64(r.base)) & (
                block.addrs < np.uint64(r.end)
            )
            if inside.any():
                positions.append(pos)
            pos += len(block)
        total = pos
        assert positions, "R never referenced"
        assert max(positions) < total * 0.65


class TestMgrid:
    def test_strided_coarse_levels(self):
        wl = Mgrid(n_vcycles=1, fine_lines=800)
        wl.prepare()
        labels = [b.label for b in wl.blocks()]
        for stride in (2, 4, 8):
            assert f"coarse{stride}" in labels

    def test_u_slightly_hotter_than_r(self):
        counts = block_owner_counts(Mgrid(n_vcycles=2, fine_lines=2000))
        assert counts["U"] > counts["R"]


class TestApplu:
    def test_rsd_only_in_rhs_phase(self):
        wl = Applu(n_iterations=2, jacobian_lines=2000)
        wl.prepare()
        rsd = wl.symbols["rsd"]
        for block in wl.blocks():
            inside = (block.addrs >= np.uint64(rsd.base)) & (
                block.addrs < np.uint64(rsd.end)
            )
            if inside.any():
                assert block.label.startswith("rhs")

    def test_abc_silent_in_rhs_phase(self):
        wl = Applu(n_iterations=2, jacobian_lines=2000)
        counts = block_owner_counts(wl, labels={"rhs", "rhs-frct", "rhs-d"})
        assert "a" not in counts and "b" not in counts and "c" not in counts
        assert "rsd" in counts


class TestCompress:
    def test_output_volume_ratio(self):
        counts = block_owner_counts(
            Compress(input_lines=5_000, seed=1), labels={"read", "write"}
        )
        ratio = counts["comp_text_buffer"] / counts["orig_text_buffer"]
        # write stream is 0.565x input lines with equal intra-line factors.
        assert ratio == pytest.approx(0.565, abs=0.02)

    def test_hash_probes_mostly_hot(self):
        wl = Compress(input_lines=3_000, seed=1)
        wl.prepare()
        htab = wl.symbols["htab"]
        hot_limit = htab.base + 64 * 64
        probes = np.concatenate(
            [b.addrs for b in wl.blocks() if b.label == "hash"]
        )
        hot_fraction = float((probes < hot_limit).mean())
        assert hot_fraction > 0.97


class TestIjpeg:
    def test_allocation_recipe(self):
        wl = Ijpeg(image_lines=100)
        wl.prepare()
        assert wl._colormap.base == 0x141000000
        assert wl._rowbuf.name == "0x14101e000"
        assert wl._image.name == "0x141020000"

    def test_alloc_sites_recorded(self):
        wl = Ijpeg(image_lines=100)
        wl.prepare()
        assert wl._image.alloc_site == "alloc_image"

    def test_quant_tables_reused(self):
        wl = Ijpeg(image_lines=2_000, rows_per_chunk=500)
        wl.prepare()
        quant = wl.symbols["std_chrominance_quant_tbl"]
        touches = 0
        for block in wl.blocks():
            if block.label == "quant":
                inside = (block.addrs >= np.uint64(quant.base)) & (
                    block.addrs < np.uint64(quant.end)
                )
                touches += int(inside.sum())
        # Far more touches than the table has lines: heavy reuse (hits).
        assert touches > 4 * (quant.size // 64)
