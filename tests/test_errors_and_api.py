"""Library-level contract tests: error hierarchy and the public API."""

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_allocation_error_is_address_space_error(self):
        assert issubclass(errors.AllocationError, errors.AddressSpaceError)

    def test_catchable_as_repro_error(self):
        from repro.cache import CacheConfig

        with pytest.raises(repro.ReproError):
            CacheConfig(size=100)


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_docstring_flow(self):
        """The README/module-docstring flow must work verbatim-ish."""
        from repro import CacheConfig, SamplingProfiler, Simulator, workloads

        sim = Simulator(CacheConfig(size="64K", assoc=4))
        result = sim.run(
            workloads.Tomcatv(n_steps=1, rows_per_step=4),
            tool=SamplingProfiler(period=64),
        )
        assert result.actual.table()
        assert result.measured.table()
        assert result.stats.slowdown >= 0

    def test_subpackage_alls_resolve(self):
        import repro.analysis
        import repro.cache
        import repro.core
        import repro.hpm
        import repro.memory
        import repro.sim
        import repro.workloads

        for module in (
            repro.analysis,
            repro.cache,
            repro.core,
            repro.hpm,
            repro.memory,
            repro.sim,
            repro.workloads,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"
