"""Tests for segment layout and address classification."""

import pytest

from repro.errors import AddressSpaceError
from repro.memory.address_space import AddressSpace, Segment


class TestSegment:
    def test_properties(self):
        seg = Segment("s", 0x1000, 0x2000)
        assert seg.size == 0x1000
        assert seg.contains(0x1000)
        assert seg.contains(0x1FFF)
        assert not seg.contains(0x2000)

    def test_rejects_inverted(self):
        with pytest.raises(AddressSpaceError):
            Segment("bad", 0x2000, 0x1000)


class TestAddressSpace:
    def test_default_segments_disjoint(self):
        aspace = AddressSpace()
        segs = aspace.segments
        for i, a in enumerate(segs):
            for b in segs[i + 1 :]:
                assert a.limit <= b.base or b.limit <= a.base

    def test_segment_of(self):
        aspace = AddressSpace()
        assert aspace.segment_of(aspace.data.base) is aspace.data
        assert aspace.segment_of(aspace.heap.base + 100) is aspace.heap
        assert aspace.segment_of(aspace.stack.limit - 1) is aspace.stack
        assert aspace.segment_of(0) is None

    def test_whole_extent_covers_all(self):
        aspace = AddressSpace()
        whole = aspace.whole_extent()
        for seg in aspace.segments:
            assert whole.lo <= seg.base and seg.limit <= whole.hi

    def test_application_extent_excludes_nothing_in_app_segments(self):
        aspace = AddressSpace()
        app = aspace.application_extent()
        assert app.lo <= aspace.data.base
        assert app.hi >= aspace.stack.limit

    def test_overlap_rejected(self):
        with pytest.raises(AddressSpaceError):
            AddressSpace(
                data=Segment("data", 0x1000, 0x9000),
                heap=Segment("heap", 0x5000, 0xA000),
            )

    def test_heap_base_matches_paper_naming(self):
        """The heap base is chosen so ijpeg's paper-named blocks fit."""
        aspace = AddressSpace()
        assert aspace.heap.contains(0x141020000)
        assert aspace.heap.contains(0x14101E000)
