"""Tests for the stack model (future-work aggregation, paper section 5)."""

import pytest

from repro.errors import AddressSpaceError
from repro.memory.address_space import Segment
from repro.memory.object_map import ObjectMap
from repro.memory.stack import StackModel, aggregation_key


def make_stack(size=1 << 16):
    omap = ObjectMap()
    seg = Segment("stack", 0x7_F000_0000, 0x7_F000_0000 + size)
    return StackModel(seg, omap), omap


class TestFrames:
    def test_push_allocates_downward(self):
        stack, _ = make_stack()
        f1 = stack.push_frame("main", {"x": 64})
        f2 = stack.push_frame("helper", {"y": 64})
        assert f2.limit <= f1.base
        assert stack.depth == 2

    def test_locals_registered_in_map(self):
        stack, omap = make_stack()
        stack.push_frame("f", {"buf": 128})
        addr = stack.addr_of("f", "buf")
        obj = omap.lookup(addr)
        assert obj is not None
        assert obj.name == aggregation_key("f", "buf")

    def test_pop_unregisters(self):
        stack, omap = make_stack()
        stack.push_frame("f", {"buf": 128})
        addr = stack.addr_of("f", "buf")
        stack.pop_frame()
        assert omap.lookup(addr) is None
        assert stack.depth == 0

    def test_pop_empty_raises(self):
        stack, _ = make_stack()
        with pytest.raises(AddressSpaceError):
            stack.pop_frame()

    def test_overflow(self):
        stack, _ = make_stack(size=256)
        with pytest.raises(AddressSpaceError):
            stack.push_frame("big", {"huge": 1 << 20})

    def test_current_frame(self):
        stack, _ = make_stack()
        assert stack.current_frame() is None
        f = stack.push_frame("f", {"x": 16})
        assert stack.current_frame() is f


class TestAggregation:
    def test_instances_share_name(self):
        """Recursive calls produce distinct extents but one shared name —
        the aggregation the paper proposes for stack variables."""
        stack, omap = make_stack()
        f1 = stack.push_frame("fib", {"n": 16})
        f2 = stack.push_frame("fib", {"n": 16})
        names = {obj.name for obj in (*f1.locals, *f2.locals)}
        assert names == {aggregation_key("fib", "n")}
        bases = {obj.base for obj in (*f1.locals, *f2.locals)}
        assert len(bases) == 2  # distinct instances

    def test_addr_of_innermost(self):
        stack, _ = make_stack()
        stack.push_frame("fib", {"n": 16})
        outer = stack.addr_of("fib", "n")
        stack.push_frame("fib", {"n": 16})
        inner = stack.addr_of("fib", "n")
        assert inner != outer

    def test_addr_of_missing(self):
        stack, _ = make_stack()
        with pytest.raises(KeyError):
            stack.addr_of("nope", "x")

    def test_layout_order_high_to_low(self):
        stack, _ = make_stack()
        frame = stack.push_frame("f", {"first": 32, "second": 32})
        first, second = frame.locals
        assert first.base > second.base
