"""Unit and property tests for the simulated heap allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError, ObjectMapError
from repro.memory.address_space import Segment
from repro.memory.allocator import HeapAllocator


def make_heap(size=1 << 20, align=64):
    return HeapAllocator(Segment("heap", 0x1_4100_0000, 0x1_4100_0000 + size), align)


class TestMalloc:
    def test_first_block_at_base(self):
        h = make_heap()
        obj = h.malloc(100)
        assert obj.base == h.segment.base

    def test_default_name_is_hex_base(self):
        h = make_heap()
        obj = h.malloc(100)
        assert obj.name == f"{obj.base:#x}"

    def test_explicit_name(self):
        h = make_heap()
        assert h.malloc(64, name="image").name == "image"

    def test_size_rounded_to_alignment(self):
        h = make_heap(align=64)
        obj = h.malloc(10)
        assert obj.size == 64

    def test_sequential_blocks_disjoint(self):
        h = make_heap()
        blocks = [h.malloc(100) for _ in range(10)]
        for a, b in zip(blocks, blocks[1:]):
            assert a.end <= b.base

    def test_paper_block_addresses(self):
        """The ijpeg allocation recipe lands at the paper's hex names."""
        h = make_heap(size=4 << 20)
        h.malloc(0x1E000)
        b2 = h.malloc(0x2000)
        b3 = h.malloc(1 << 20)
        assert b2.name == "0x14101e000"
        assert b3.name == "0x141020000"

    def test_exhaustion(self):
        h = make_heap(size=4096)
        with pytest.raises(AllocationError):
            h.malloc(8192)

    def test_bad_size(self):
        h = make_heap()
        with pytest.raises(AllocationError):
            h.malloc(0)

    def test_alloc_site_recorded(self):
        h = make_heap()
        assert h.malloc(64, alloc_site="make_node").alloc_site == "make_node"


class TestFree:
    def test_free_and_reuse(self):
        h = make_heap()
        a = h.malloc(256)
        h.free(a)
        b = h.malloc(256)
        assert b.base == a.base  # first-fit reuses the hole

    def test_free_by_address(self):
        h = make_heap()
        a = h.malloc(64)
        h.free(a.base)
        assert h.live_count == 0

    def test_double_free_rejected(self):
        h = make_heap()
        a = h.malloc(64)
        h.free(a)
        with pytest.raises(ObjectMapError):
            h.free(a)

    def test_free_unknown_rejected(self):
        h = make_heap()
        with pytest.raises(ObjectMapError):
            h.free(12345)

    def test_coalescing(self):
        h = make_heap()
        a = h.malloc(256)
        b = h.malloc(256)
        c = h.malloc(256)
        h.free(a)
        h.free(c)
        h.free(b)  # middle free must merge all three holes
        big = h.malloc(768)
        assert big.base == a.base
        h.check_invariants()

    def test_counters(self):
        h = make_heap()
        a = h.malloc(64)
        h.malloc(64)
        h.free(a)
        assert h.alloc_count == 2
        assert h.free_count == 1
        assert h.live_count == 1


class TestObservers:
    def test_events_fire(self):
        h = make_heap()
        events = []
        h.add_observer(lambda ev, obj: events.append((ev, obj.base)))
        a = h.malloc(64)
        h.free(a)
        assert events == [("alloc", a.base), ("free", a.base)]


class TestPropertyBased:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.sampled_from(["malloc", "free"]), st.integers(1, 4096)),
            max_size=80,
        )
    )
    def test_invariants_under_churn(self, ops):
        """Holes and live blocks must tile the segment after any sequence."""
        h = make_heap(size=1 << 18)
        live = []
        for op, size in ops:
            if op == "malloc":
                try:
                    live.append(h.malloc(size))
                except AllocationError:
                    pass
            elif live:
                h.free(live.pop(size % len(live)))
        h.check_invariants()
        assert h.live_count == len(live)
        assert h.total_allocated == sum(o.size for o in live)
