"""Tests for symbol-table variable layout."""

import pytest

from repro.errors import AddressSpaceError, ObjectMapError
from repro.memory.address_space import Segment
from repro.memory.symbol_table import SymbolTable


def make_table(size=1 << 20, align=64):
    return SymbolTable(Segment("data", 0x1000_0000, 0x1000_0000 + size), align)


class TestDeclare:
    def test_sequential_layout(self):
        st = make_table()
        a = st.declare("a", 100)
        b = st.declare("b", 100)
        assert a.base < b.base
        assert b.base >= a.end

    def test_alignment(self):
        st = make_table(align=256)
        a = st.declare("a", 10)
        b = st.declare("b", 10)
        assert a.base % 256 == 0
        assert b.base % 256 == 0

    def test_pad_after_creates_gap(self):
        st = make_table()
        a = st.declare("a", 64, pad_after=1024)
        b = st.declare("b", 64)
        assert b.base >= a.end + 1024

    def test_duplicate_name_rejected(self):
        st = make_table()
        st.declare("x", 8)
        with pytest.raises(ObjectMapError):
            st.declare("x", 8)

    def test_overflow_rejected(self):
        st = make_table(size=4096)
        with pytest.raises(AddressSpaceError):
            st.declare("big", 8192)

    def test_bad_size_rejected(self):
        st = make_table()
        with pytest.raises(ValueError):
            st.declare("z", 0)

    def test_bad_alignment_rejected(self):
        st = make_table()
        with pytest.raises(ValueError):
            st.declare("z", 8, align=3)

    def test_declare_many_in_order(self):
        st = make_table()
        objs = st.declare_many({"p": 64, "q": 64, "r": 64})
        assert list(objs) == ["p", "q", "r"]
        assert objs["p"].base < objs["q"].base < objs["r"].base

    def test_lookup_helpers(self):
        st = make_table()
        a = st.declare("a", 64)
        assert st["a"] is a
        assert "a" in st
        assert "b" not in st
        assert len(st) == 1
        assert st.objects == [a]
        assert st.bytes_used >= 64

    def test_objects_never_overlap(self):
        st = make_table()
        objs = [st.declare(f"v{i}", 96 + i * 8) for i in range(20)]
        for a, b in zip(objs, objs[1:]):
            assert a.end <= b.base
