"""Tests for the unified address -> object map."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ObjectMapError
from repro.memory.object_map import AttributionSnapshot, ObjectMap
from repro.memory.objects import MemoryObject, ObjectKind
from repro.util.intervals import Interval


class TestLookup:
    def test_lookup_globals_and_heap(self, populated_map):
        omap, objs, _ = populated_map
        assert omap.lookup(objs["A"].base) is objs["A"]
        assert omap.lookup(objs["B"].base + 100) is objs["B"]
        assert omap.lookup(objs["h1"].base + 5) is objs["h1"]

    def test_lookup_miss_in_gap(self, populated_map):
        omap, objs, _ = populated_map
        # C was declared with pad_after, so just past C is unmapped.
        assert omap.lookup(objs["C"].end + 100) is None

    def test_lookup_before_everything(self, populated_map):
        omap, _, _ = populated_map
        assert omap.lookup(1) is None

    def test_lookup_after_free(self, populated_map):
        omap, objs, heap = populated_map
        heap.free(objs["h2"])
        assert omap.lookup(objs["h2"].base) is None

    def test_probe_count_consumed(self, populated_map):
        omap, objs, _ = populated_map
        omap.consume_probe_count()
        omap.lookup(objs["A"].base)
        assert omap.consume_probe_count() > 0
        assert omap.consume_probe_count() == 0

    def test_len_and_all_objects_sorted(self, populated_map):
        omap, objs, _ = populated_map
        assert len(omap) == 5
        bases = [o.base for o in omap.all_objects()]
        assert bases == sorted(bases)


class TestGeneration:
    def test_generation_bumps_on_change(self, populated_map):
        omap, _, heap = populated_map
        g0 = omap.generation
        blk = heap.malloc(64)
        assert omap.generation > g0
        heap.free(blk)
        assert omap.generation > g0 + 1

    def test_snapshot_cached_per_generation(self, populated_map):
        omap, _, heap = populated_map
        s1 = omap.snapshot()
        s2 = omap.snapshot()
        assert s1 is s2
        heap.malloc(64)
        assert omap.snapshot() is not s1


class TestBoundaries:
    def test_boundaries_strictly_inside(self, populated_map):
        omap, objs, _ = populated_map
        iv = Interval(objs["A"].base, objs["C"].end)
        bounds = omap.boundaries_in(iv)
        assert objs["A"].base not in bounds  # not strictly inside
        assert objs["B"].base in bounds
        assert objs["C"].base in bounds
        assert all(iv.lo < b < iv.hi for b in bounds)

    def test_objects_overlapping_partial(self, populated_map):
        omap, objs, _ = populated_map
        # An interval starting mid-B must still report B.
        iv = Interval(objs["B"].base + 10, objs["B"].base + 20)
        assert omap.objects_overlapping(iv) == [objs["B"]]

    def test_objects_overlapping_range(self, populated_map):
        omap, objs, _ = populated_map
        iv = Interval(objs["A"].base, objs["h2"].end)
        found = omap.objects_overlapping(iv)
        assert [o.name for o in found] == [
            objs["A"].name, objs["B"].name, objs["C"].name,
            objs["h1"].name, objs["h2"].name,
        ]

    def test_stack_objects_included(self, aspace):
        omap = ObjectMap()
        obj = MemoryObject("f:x", base=aspace.stack.base, size=64, kind=ObjectKind.STACK)
        omap.add_stack(obj)
        assert omap.lookup(obj.base) is obj
        omap.remove_stack(obj)
        assert omap.lookup(obj.base) is None

    def test_add_global_wrong_kind_rejected(self):
        omap = ObjectMap()
        heap_obj = MemoryObject("h", base=0x1000, size=64, kind=ObjectKind.HEAP)
        with pytest.raises(ObjectMapError):
            omap.add_global(heap_obj)


class TestAttributionSnapshot:
    def test_attribute_basics(self, populated_map):
        omap, objs, _ = populated_map
        snap = omap.snapshot()
        addrs = np.array(
            [objs["A"].base, objs["B"].base + 8, objs["h1"].base, 1, objs["C"].end + 50],
            dtype=np.uint64,
        )
        idx = snap.attribute(addrs)
        names = [snap.objects[i].name if i >= 0 else None for i in idx]
        assert names == [objs["A"].name, objs["B"].name, objs["h1"].name, None, None]

    def test_count_by_object(self, populated_map):
        omap, objs, _ = populated_map
        snap = omap.snapshot()
        addrs = np.array([objs["A"].base] * 3 + [objs["B"].base] * 2, dtype=np.uint64)
        counts = snap.count_by_object(addrs)
        by_name = dict(zip((o.name for o in snap.objects), counts))
        assert by_name[objs["A"].name] == 3
        assert by_name[objs["B"].name] == 2

    def test_empty_snapshot(self):
        snap = AttributionSnapshot([])
        idx = snap.attribute(np.array([1, 2], dtype=np.uint64))
        assert (idx == -1).all()

    def test_overlap_rejected(self):
        a = MemoryObject("a", base=100, size=50)
        b = MemoryObject("b", base=120, size=50)
        with pytest.raises(ObjectMapError):
            AttributionSnapshot([a, b])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 2000), min_size=1, max_size=50))
    def test_attribute_matches_linear_scan(self, probes):
        objs = [
            MemoryObject("x", base=100, size=100),
            MemoryObject("y", base=300, size=50),
            MemoryObject("z", base=1000, size=500),
        ]
        snap = AttributionSnapshot(objs)
        addrs = np.array(probes, dtype=np.uint64)
        got = snap.attribute(addrs)
        for addr, idx in zip(probes, got):
            expected = next(
                (i for i, o in enumerate(objs) if o.contains(addr)), -1
            )
            assert idx == expected
