"""Tests for the MemoryObject value type."""

import pytest

from repro.memory.objects import MemoryObject, ObjectKind
from repro.util.intervals import Interval


class TestMemoryObject:
    def test_extent_is_half_open(self):
        obj = MemoryObject("x", base=100, size=50)
        assert obj.end == 150
        assert obj.extent == Interval(100, 150)
        assert obj.contains(100)
        assert obj.contains(149)
        assert not obj.contains(150)
        assert not obj.contains(99)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            MemoryObject("x", base=0, size=0)
        with pytest.raises(ValueError):
            MemoryObject("x", base=-1, size=4)

    def test_uids_unique_and_increasing(self):
        a = MemoryObject("a", base=0, size=1)
        b = MemoryObject("b", base=0, size=1)
        assert a.uid != b.uid
        assert b.uid > a.uid

    def test_default_kind_global(self):
        assert MemoryObject("x", base=0, size=8).kind is ObjectKind.GLOBAL

    def test_frozen(self):
        obj = MemoryObject("x", base=0, size=8)
        with pytest.raises(AttributeError):
            obj.base = 5

    def test_alloc_site(self):
        obj = MemoryObject(
            "h", base=0, size=8, kind=ObjectKind.HEAP, alloc_site="make_node"
        )
        assert obj.alloc_site == "make_node"
