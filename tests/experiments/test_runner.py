"""Tests for the experiment runner's scaling and caching."""

from repro.core.sampling import PeriodSchedule


class TestRunner:
    def test_baseline_cached(self, quick_runner):
        a = quick_runner.baseline("tomcatv")
        b = quick_runner.baseline("tomcatv")
        assert a is b

    def test_scaled_period_targets_samples(self, quick_runner):
        period = quick_runner.scaled_sampling_period("tomcatv")
        misses = quick_runner.baseline("tomcatv").stats.app_misses
        assert misses // period >= 1000  # at least ~half the target samples

    def test_search_interval_fits_run(self, quick_runner):
        interval = quick_runner.search_interval("tomcatv")
        cycles = quick_runner.baseline("tomcatv").stats.app_cycles
        assert 20 <= cycles // interval <= 60

    def test_overhead_periods_are_paper_ladder(self, quick_runner):
        assert quick_runner.overhead_periods() == [1_000, 10_000, 100_000, 1_000_000]

    def test_with_sampling_runs(self, quick_runner):
        res = quick_runner.with_sampling(
            "mgrid", period=5_000, schedule=PeriodSchedule.PRIME
        )
        assert res.measured is not None
        assert res.measured.meta["schedule"] == "prime"

    def test_quick_kwargs_shrink(self, quick_runner):
        wl = quick_runner.make("tomcatv")
        assert wl.n_steps == 4

    def test_apps_list(self, quick_runner):
        assert len(quick_runner.apps()) == 7
