"""Golden regression tests for the quick-mode reports.

Each test regenerates a paper artifact in quick mode (seed 99, the
shared ``quick_runner``) and diffs its key metrics against checked-in
golden values with explicit tolerances. The goldens live in
``tests/experiments/golden/`` and were produced by the same drivers;
regenerate them deliberately when a simulation-semantics change is
intended, never to paper over an unexplained drift.

Tolerances: shares within 3 percentage points, accuracy metrics within
2 points, rank agreements may not drop more than 0.1 below golden, and
categorical outcomes (who is hottest, who each search finds first) must
match exactly.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.fig2 import run_fig2
from repro.experiments.table1 import run_table1

GOLDEN_DIR = Path(__file__).parent / "golden"

SHARE_TOL = 0.03
ERROR_TOL = 0.02
AGREEMENT_SLACK = 0.1


def load(name: str) -> dict:
    return json.loads((GOLDEN_DIR / name).read_text())


def assert_shares_close(measured: dict, golden: dict, label: str):
    for obj, share in golden.items():
        got = measured.get(obj, 0.0)
        assert got == pytest.approx(share, abs=SHARE_TOL), (
            f"{label}: {obj} share {got:.4f} vs golden {share:.4f}"
        )


class TestTable1Golden:
    @pytest.fixture(scope="class")
    def report(self, quick_runner):
        return run_table1(quick_runner, apps=["compress", "mgrid"])

    def test_apps_present(self, report):
        golden = load("table1_quick.json")
        assert set(report.values) == set(golden)

    def test_profiles_match_golden(self, report):
        golden = load("table1_quick.json")
        for app, gold in golden.items():
            values = report.values[app]
            for column in ("actual", "sample", "search"):
                assert_shares_close(
                    values[column], gold[column], f"{app}/{column}"
                )

    def test_accuracy_metrics_match_golden(self, report):
        golden = load("table1_quick.json")
        for app, gold in golden.items():
            values = report.values[app]
            for metric in ("sample_rank_agreement", "search_rank_agreement"):
                assert values[metric] >= gold[metric] - AGREEMENT_SLACK, (
                    f"{app}: {metric} regressed to {values[metric]:.3f} "
                    f"(golden {gold[metric]:.3f})"
                )
            for metric in ("sample_max_error", "search_max_error"):
                assert values[metric] <= gold[metric] + ERROR_TOL, (
                    f"{app}: {metric} regressed to {values[metric]:.4f} "
                    f"(golden {gold[metric]:.4f})"
                )

    def test_actual_ranking_order_is_stable(self, report):
        golden = load("table1_quick.json")
        for app, gold in golden.items():
            gold_order = sorted(gold["actual"], key=lambda k: -gold["actual"][k])
            actual = report.values[app]["actual"]
            got_order = sorted(actual, key=lambda k: -actual[k])
            assert got_order[:3] == gold_order[:3], (
                f"{app}: top-3 actual order changed"
            )


class TestFig2Golden:
    @pytest.fixture(scope="class")
    def report(self, quick_runner):
        return run_fig2(quick_runner)

    def test_layout_shares_match_golden(self, report):
        golden = load("fig2_quick.json")
        assert_shares_close(report.values["actual"], golden["actual"], "fig2")

    def test_search_outcomes_match_golden(self, report):
        golden = load("fig2_quick.json")
        assert report.values["hottest"] == golden["hottest"]
        assert report.values["pq_top"] == golden["pq_top"]
        assert report.values["greedy_top"] == golden["greedy_top"]
        assert report.values["pq_found"] == golden["pq_found"]
