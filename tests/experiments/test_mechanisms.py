"""The E13 mechanism-sweep driver, its task keys, and the MRC refusal."""

import pytest

from repro.cache import parse_mechanisms
from repro.errors import CacheConfigError
from repro.experiments.mechanisms import (
    MECHANISM_CHOICES,
    mechanism_task,
    run_mechanisms,
)
from repro.experiments.mrc import mrc_pass, run_mrc
from repro.experiments.runner import ExperimentRunner, RunnerConfig

pytestmark = pytest.mark.mechanisms


def test_choices_cover_singles_and_pairings():
    assert MECHANISM_CHOICES == ("vc", "mc", "sb", "vc+sb", "mc+sb")


class TestTaskKeys:
    def test_mechanisms_are_part_of_the_cache_key(self, quick_runner):
        base = mechanism_task(quick_runner, "compress", None, size=32 * 1024)
        vc = mechanism_task(quick_runner, "compress", "vc", size=32 * 1024)
        sb = mechanism_task(quick_runner, "compress", "sb", size=32 * 1024)
        assert len({base.key(), vc.key(), sb.key()}) == 3

    def test_entries_change_the_key(self, quick_runner):
        a = mechanism_task(quick_runner, "compress", "vc:4")
        b = mechanism_task(quick_runner, "compress", "vc:8")
        assert a.key() != b.key()

    def test_label_not_in_key(self, quick_runner):
        import dataclasses

        a = mechanism_task(quick_runner, "compress", "vc")
        b = dataclasses.replace(a, label="other")
        assert a.key() == b.key()


class TestRunnerConfig:
    def test_mechanisms_fold_into_cache(self):
        config = RunnerConfig(mechanisms="vc+sb")
        assert config.cache.mechanisms == parse_mechanisms("vc+sb")

    def test_mrc_refuses_decorated_runner(self):
        runner = ExperimentRunner(
            RunnerConfig(seed=99, mechanisms="vc"), quick=True
        )
        with pytest.raises(CacheConfigError, match="repro mechanisms"):
            mrc_pass(runner, "compress")
        with pytest.raises(CacheConfigError):
            run_mrc(runner, apps=["compress"])

    def test_mrc_warm_cells_empty_for_decorated_runner(self):
        runner = ExperimentRunner(
            RunnerConfig(seed=99, mechanisms="vc"), quick=True
        )
        assert runner._cells_for("mrc", ["compress"]) == []


class TestDriver:
    @pytest.fixture(scope="class")
    def report(self, quick_runner):
        return run_mechanisms(
            quick_runner,
            apps=["compress"],
            mechanisms=["sb"],
            sizes=[32 * 1024],
        )

    def test_report_shape(self, report):
        assert report.experiment == "mechanisms"
        assert "rescued" in report.table
        assert "sb" in report.values["mechanisms"]

    def test_rescue_arithmetic(self, report):
        cell = report.values["apps"]["compress"][32 * 1024]
        sb = cell["stacks"]["sb"]
        assert sb["rescued"] == cell["baseline_misses"] - sb["misses"]
        assert sb["events"]["sb_hits"] <= sb["events"]["sb_prefetches"]

    def test_per_object_attribution_sums_to_total(self, report):
        cell = report.values["apps"]["compress"][32 * 1024]
        sb = cell["stacks"]["sb"]
        assert sum(sb["rescued_by_object"].values()) == sb["rescued"]
        # Sequential scans dominate compress; SB must rescue plenty.
        assert sb["rescued"] > 0

    def test_attribution_table_rendered(self, report):
        assert "rescued (sb)" in report.table
        assert "orig_text_buffer" in report.table


class TestCli:
    def test_mechanism_flag_choices(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["mechanisms", "--mechanism", "vc+sb"]
        )
        assert args.mechanism == "vc+sb"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mechanisms", "--mechanism", "tlb"])

    def test_mechanisms_excluded_from_all(self):
        from repro.cli import _EXPERIMENTS, _NOT_IN_ALL

        assert "mechanisms" in _EXPERIMENTS
        assert "mechanisms" in _NOT_IN_ALL

    def test_end_to_end(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "mechanisms",
                    "--quick",
                    "--apps",
                    "mgrid",
                    "--mechanism",
                    "vc",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "E13" in out
        assert "rescued (vc)" in out
