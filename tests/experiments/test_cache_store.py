"""Tests for the persistent result cache and run manifest."""

import pickle

from repro.cache import CacheConfig
from repro.experiments.cache_store import (
    Manifest,
    ResultCache,
    canonical,
    code_version_tag,
    stable_hash,
)
from repro.experiments.parallel import SimSpec, TaskSpec, ToolSpec


class TestStableHash:
    def test_deterministic(self):
        payload = {"workload": "compress", "kwargs": {"n": 3}, "seed": 7}
        assert stable_hash(payload) == stable_hash(payload)

    def test_dict_order_irrelevant(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_value_changes_key(self):
        assert stable_hash({"seed": 1}) != stable_hash({"seed": 2})

    def test_dataclasses_and_enums_canonicalise(self):
        c = canonical(CacheConfig(size=64 * 1024, assoc=4))
        assert c["size"] == 64 * 1024
        assert c["policy"] == "lru"

    def test_int_float_distinct_from_string(self):
        assert stable_hash({"x": 1}) == stable_hash({"x": 1.0})
        assert stable_hash({"x": 1}) != stable_hash({"x": "1"})


class TestTaskKeys:
    def test_key_stable_across_calls(self):
        spec = TaskSpec(workload="synthetic-streams", seed=5)
        assert spec.key() == spec.key()

    def test_key_ignores_label(self):
        a = TaskSpec(workload="compress", seed=5, label="x")
        b = TaskSpec(workload="compress", seed=5, label="y")
        assert a.key() == b.key()

    def test_key_varies_with_config(self):
        base = TaskSpec(workload="compress", seed=5)
        assert base.key() != TaskSpec(workload="compress", seed=6).key()
        assert base.key() != TaskSpec(workload="mgrid", seed=5).key()
        assert (
            base.key()
            != TaskSpec(
                workload="compress",
                seed=5,
                tool=ToolSpec("sampling", {"period": 64}),
            ).key()
        )
        assert (
            base.key()
            != TaskSpec(
                workload="compress",
                seed=5,
                sim=SimSpec(cache=CacheConfig(size=128 * 1024)),
            ).key()
        )

    def test_code_version_tag_shape(self):
        # The key embeds this source hash, so editing the simulator or
        # the cache models invalidates every stored entry automatically.
        tag = code_version_tag()
        assert len(tag) == 16
        assert all(c in "0123456789abcdef" for c in tag)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("deadbeef" * 8) is None
        cache.put("deadbeef" * 8, {"value": 42})
        assert cache.get("deadbeef" * 8) == {"value": 42}
        assert ("deadbeef" * 8) in cache
        assert len(cache) == 1

    def test_corrupt_entry_treated_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = "ab" * 32
        cache.put(key, [1, 2, 3])
        path = next(iter((tmp_path / "cache" / "entries").rglob("*.pkl")))
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert key not in cache  # corrupt file was evicted

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("cd" * 32, "x")
        cache.manifest_path.write_text("{}\n")
        cache.clear()
        assert len(cache) == 0
        assert not cache.manifest_path.exists()

    def test_round_trips_pickles(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        value = {"mask": (1, 2, 3), "cfg": CacheConfig(size=64 * 1024)}
        cache.put("ef" * 32, value)
        restored = cache.get("ef" * 32)
        assert restored["cfg"] == value["cfg"]
        assert pickle.dumps(restored) == pickle.dumps(value)


class TestManifest:
    def test_counts_and_summary(self):
        m = Manifest()
        m.record(
            task="t1", workload="compress", seed=1, key="k1",
            cached=False, wall_s=0.5,
        )
        m.record(
            task="t2", workload="compress", seed=2, key="k2",
            cached=True, wall_s=0.0,
        )
        assert m.counts() == {"hit": 1, "miss": 1}
        assert m.total_wall_s() == 0.5
        assert "1 cache hit" in m.summary()
        assert "1 simulated" in m.summary()

    def test_jsonl_mirror(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        m = Manifest(path=path)
        m.record(
            task="t1", workload="mgrid", seed=9, key="k9",
            cached=False, wall_s=1.25,
        )
        loaded = Manifest.load(path)
        assert len(loaded) == 1
        rec = loaded[0]
        assert rec["workload"] == "mgrid"
        assert rec["seed"] == 9
        assert rec["cached"] is False


class TestCodeVersionTag:
    def test_kernel_sources_participate_in_version_tag(self):
        """Editing a cache kernel must invalidate cached results: every
        kernels/*.py module has to appear in the hashed source set."""
        from repro.experiments.cache_store import source_files

        names = {p.as_posix() for p in source_files()}
        for module in ("__init__", "base", "reference", "flat"):
            assert any(
                n.endswith(f"cache/kernels/{module}.py") for n in names
            ), module

    def test_backend_distinguishes_task_keys(self):
        def key_for(backend):
            cfg = CacheConfig(size=256 * 1024, assoc=4, backend=backend)
            return TaskSpec(workload="swim", sim=SimSpec(cache=cfg)).key()

        assert key_for("reference") != key_for("array")
        assert key_for("array") == key_for("array")  # still deterministic
