"""Parallel-vs-serial equivalence and cache-hit behaviour.

The acceptance bar for the parallel runner: fanning a grid over worker
processes must produce *bit-identical* results to serial execution, and
re-running the same grid against a persistent cache directory must be
served from disk.
"""

import pytest

from repro.cache import CacheConfig
from repro.experiments.cache_store import Manifest, ResultCache
from repro.experiments.parallel import (
    ParallelRunner,
    SimSpec,
    ToolSpec,
    derive_task_seed,
    expand_grid,
)
from repro.experiments.runner import ExperimentRunner, RunnerConfig

SIM = SimSpec(cache=CacheConfig(size=32 * 1024, assoc=2))

STREAMS = {"a": (64 * 1024, 50), "b": (64 * 1024, 30), "c": (64 * 1024, 20)}


def grid():
    """A small but non-trivial grid: 2 workload variants x 3 tools."""
    workloads = [
        ("synthetic-streams", {"spec": STREAMS, "rounds": 6,
                               "lines_per_round": 1500, "interleaved": True}),
        ("synthetic-streams", {"spec": STREAMS, "rounds": 6,
                               "lines_per_round": 1500, "interleaved": False}),
    ]
    tools = [
        None,
        ToolSpec("sampling", {"period": 97, "schedule": "prime", "seed": 3}),
        ToolSpec("search", {"n": 4, "interval_cycles": 200_000}),
    ]
    return expand_grid(workloads, tools, sim=SIM, seed=7)


def profiles_equal(a, b):
    if (a is None) != (b is None):
        return False
    if a is None:
        return True
    return a.as_dict() == b.as_dict()


def results_identical(xs, ys):
    assert len(xs) == len(ys)
    for x, y in zip(xs, ys):
        assert x.stats == y.stats
        assert profiles_equal(x.actual, y.actual)
        assert profiles_equal(x.measured, y.measured)


class TestDeterminism:
    def test_derive_task_seed_is_stable(self):
        s = derive_task_seed("abc123", "tomcatv", 4)
        assert s == derive_task_seed("abc123", "tomcatv", 4)
        assert 0 <= s < 2**31 - 1
        # Any input change yields a different seed.
        assert s != derive_task_seed("abc124", "tomcatv", 4)
        assert s != derive_task_seed("abc123", "mgrid", 4)
        assert s != derive_task_seed("abc123", "tomcatv", 5)

    def test_expand_grid_deterministic(self):
        a, b = grid(), grid()
        assert [s.seed for s in a] == [s.seed for s in b]
        assert [s.key() for s in a] == [s.key() for s in b]

    def test_expand_grid_derives_distinct_seeds(self):
        workloads = [("synthetic-streams", {"spec": STREAMS})]
        tools = [None, ToolSpec("sampling", {"period": 64})]
        specs = expand_grid(workloads, tools, sim=SIM, replicas=2)
        seeds = [s.seed for s in specs]
        assert len(set(seeds)) == len(seeds)


class TestParallelEqualsSerial:
    def test_jobs4_matches_jobs1(self):
        serial = ParallelRunner(jobs=1).run(grid())
        parallel = ParallelRunner(jobs=4).run(grid())
        results_identical(serial, parallel)

    def test_second_invocation_all_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = ParallelRunner(jobs=2, cache=cache)
        warm = first.run(grid())
        assert first.manifest.misses == len(grid())

        second = ParallelRunner(jobs=2, cache=cache)
        served = second.run(grid())
        counts = second.manifest.counts()
        assert counts["miss"] == 0
        assert counts["hit"] == len(grid())
        results_identical(warm, served)

    def test_duplicate_cells_simulated_once(self):
        specs = grid()
        doubled = specs + specs
        runner = ParallelRunner(jobs=1)
        results = runner.run(doubled)
        assert runner.manifest.misses == len(specs)
        results_identical(results[: len(specs)], results[len(specs):])

    def test_manifest_mirrors_to_jsonl(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = ParallelRunner(
            jobs=1, cache=cache, manifest=Manifest(path=cache.manifest_path)
        )
        runner.run(grid()[:2])
        rows = Manifest.load(cache.manifest_path)
        assert len(rows) == 2
        assert all(set(r) >= {"task", "workload", "seed", "key", "cached",
                              "wall_s"} for r in rows)


class TestRunnerIntegration:
    """ExperimentRunner wired through the cache: warm + serial drivers."""

    @pytest.fixture
    def cache_dir(self, tmp_path):
        return tmp_path / "results"

    def test_warm_then_rerun_hits_cache(self, cache_dir):
        r1 = ExperimentRunner(
            RunnerConfig(seed=42), quick=True, jobs=1, cache_dir=cache_dir
        )
        r1.warm(apps=["compress"], experiments=["table1"])
        assert r1.manifest.misses > 0
        # The JSONL mirror must exist even though the cache dir started
        # out empty (an empty ResultCache is falsy — len() == 0 — which
        # once disabled the mirror via a truthiness check).
        assert r1.result_cache.manifest_path.exists()
        assert len(Manifest.load(r1.result_cache.manifest_path)) == len(
            r1.manifest.records
        )

        r2 = ExperimentRunner(
            RunnerConfig(seed=42), quick=True, jobs=1, cache_dir=cache_dir
        )
        r2.warm(apps=["compress"], experiments=["table1"])
        counts = r2.manifest.counts()
        assert counts["miss"] == 0
        assert counts["hit"] >= 1
        # ISSUE acceptance: >=90% of the repeat grid served from cache.
        total = counts["hit"] + counts["miss"]
        assert counts["hit"] / total >= 0.9

    def test_warmed_results_match_unwarmed(self, cache_dir):
        cold = ExperimentRunner(RunnerConfig(seed=42), quick=True)
        warm = ExperimentRunner(
            RunnerConfig(seed=42), quick=True, jobs=1, cache_dir=cache_dir
        )
        warm.warm(apps=["compress"], experiments=["table1"])

        a = cold.with_sampling("compress")
        b = warm.with_sampling("compress")
        assert a.stats == b.stats
        assert profiles_equal(a.measured, b.measured)
        base_a = cold.baseline("compress")
        base_b = warm.baseline("compress")
        assert base_a.stats == base_b.stats
        assert profiles_equal(base_a.actual, base_b.actual)


class TestSpeedupGuard:
    @pytest.mark.skipif(
        (__import__("os").cpu_count() or 1) < 4,
        reason="needs >=4 cores to demonstrate parallel speedup",
    )
    def test_parallel_speedup_on_grid(self):
        # ISSUE acceptance: >=1.8x on an >=8-cell grid with 4 workers.
        import time

        specs = grid() + expand_grid(
            [("synthetic-streams", {"spec": STREAMS, "rounds": 8,
                                    "lines_per_round": 2000})],
            [None, ToolSpec("sampling", {"period": 101})],
            sim=SIM,
            seed=11,
        )
        assert len(specs) >= 8
        t0 = time.perf_counter()
        serial = ParallelRunner(jobs=1).run(specs)
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = ParallelRunner(jobs=4).run(specs)
        t_parallel = time.perf_counter() - t0
        results_identical(serial, parallel)
        assert t_serial / t_parallel >= 1.8
