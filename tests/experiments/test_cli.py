"""Tests for the command-line interface."""

import pytest

from repro.cli import _EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_experiments_are_choices(self):
        parser = build_parser()
        for name in _EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_unknown_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_flags(self):
        args = build_parser().parse_args(
            ["table1", "--apps", "mgrid", "ijpeg", "--quick", "--seed", "7"]
        )
        assert args.apps == ["mgrid", "ijpeg"]
        assert args.quick
        assert args.seed == 7

    def test_profile_tool_choices(self):
        args = build_parser().parse_args(["profile", "--tool", "search"])
        assert args.tool == "search"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "--tool", "magic"])


class TestMain:
    def test_fig2_runs(self, capsys):
        assert main(["fig2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "priority queue" in out
        assert "[fig2 in" in out

    def test_single_app_restriction(self, capsys):
        assert main(["fig5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "applu" in out

    def test_profile_sampling(self, capsys):
        assert main(["profile", "--apps", "mgrid", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "profile: mgrid" in out
        assert "overhead" in out

    def test_profile_search(self, capsys):
        assert main(["profile", "--apps", "mgrid", "--tool", "search", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "search(10-way)" in out

    def test_profile_adaptive(self, capsys):
        assert main(["profile", "--apps", "mgrid", "--tool", "adaptive", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "profile: mgrid" in out
