"""Checkpoint/resume tests: CheckpointPolicy, execute_task, ParallelRunner.

The contract under test: a preempted worker's half-finished cell, resumed
from its on-disk snapshot, finishes with results bit-identical to an
uninterrupted run — and anything stale, corrupt, or from another code
version degrades to recomputation, never to a wrong result.
"""

import pickle

import pytest

from repro.errors import SimulationError
from repro.experiments.cache_store import ResultCache
from repro.experiments.parallel import (
    CheckpointPolicy,
    ParallelRunner,
    TaskSpec,
    ToolSpec,
    execute_task,
)
from repro.sim.session import SNAPSHOT_VERSION
from repro.workloads.registry import make_workload


def make_spec(**overrides):
    base = dict(
        workload="compress",
        workload_kwargs={"input_lines": 20000},
        seed=11,
        tool=ToolSpec("sampling", {"period": 701}),
    )
    base.update(overrides)
    return TaskSpec(**base)


def fingerprint(result):
    return (
        result.stats.app_refs,
        result.stats.app_misses,
        result.stats.app_cycles,
        result.stats.instr_cycles,
        [(r.kind, r.cycle, r.handler_cycles) for r in result.stats.interrupts.records],
        None
        if result.measured is None
        else [(s.name, s.count) for s in result.measured.shares],
    )


def leave_partial_checkpoint(policy, spec, max_steps=12):
    """Simulate a preempted worker: run a few steps, checkpoint, 'crash'."""
    workload = make_workload(spec.workload, seed=spec.seed, **spec.workload_kwargs)
    session = spec.sim.build(spec.seed).start_session(
        workload,
        tool=spec.tool.build() if spec.tool is not None else None,
        series_bucket_cycles=spec.series_bucket_cycles,
        max_refs=spec.max_refs,
    )
    finished = session.run(
        max_steps=max_steps,
        checkpoint_every_refs=2000,
        on_checkpoint=lambda snap: policy.save(spec.key(), snap),
    )
    assert not finished, "preemption fixture ran the cell to completion"
    assert policy.path_for(spec.key()).exists()


class TestCheckpointPolicy:
    def test_save_load_roundtrip(self, tmp_path):
        policy = CheckpointPolicy(tmp_path / "ckpt")
        spec = make_spec()
        leave_partial_checkpoint(policy, spec)
        snapshot = policy.load(spec.key())
        assert snapshot is not None
        assert snapshot.version == SNAPSHOT_VERSION
        assert snapshot.workload_name == "compress"

    def test_load_missing_returns_none(self, tmp_path):
        policy = CheckpointPolicy(tmp_path)
        assert policy.load("no-such-key") is None

    def test_corrupt_file_discarded(self, tmp_path):
        policy = CheckpointPolicy(tmp_path)
        path = policy.path_for("k")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a pickle")
        assert policy.load("k") is None
        assert not path.exists()

    def test_key_mismatch_discarded(self, tmp_path):
        """A file copied/renamed to another cell's key must not resume it."""
        policy = CheckpointPolicy(tmp_path)
        spec = make_spec()
        leave_partial_checkpoint(policy, spec)
        policy.path_for(spec.key()).rename(policy.path_for("other"))
        assert policy.load("other") is None
        assert not policy.path_for("other").exists()

    def test_wrong_snapshot_version_discarded(self, tmp_path):
        policy = CheckpointPolicy(tmp_path)
        spec = make_spec()
        leave_partial_checkpoint(policy, spec)
        path = policy.path_for(spec.key())
        payload = pickle.loads(path.read_bytes())
        payload["snapshot_version"] = SNAPSHOT_VERSION + 1
        path.write_bytes(pickle.dumps(payload))
        assert policy.load(spec.key()) is None
        assert not path.exists()

    def test_wrong_code_version_discarded(self, tmp_path):
        policy = CheckpointPolicy(tmp_path)
        spec = make_spec()
        leave_partial_checkpoint(policy, spec)
        path = policy.path_for(spec.key())
        payload = pickle.loads(path.read_bytes())
        payload["code_version"] = "someone-elses-tree"
        path.write_bytes(pickle.dumps(payload))
        assert policy.load(spec.key()) is None

    def test_discard(self, tmp_path):
        policy = CheckpointPolicy(tmp_path)
        spec = make_spec()
        leave_partial_checkpoint(policy, spec)
        policy.discard(spec.key())
        assert not policy.path_for(spec.key()).exists()
        policy.discard(spec.key())  # idempotent

    def test_bad_cadence(self, tmp_path):
        with pytest.raises(SimulationError):
            CheckpointPolicy(tmp_path, every_refs=0)


class TestExecuteTaskResume:
    def test_resume_bit_identical(self, tmp_path):
        spec = make_spec()
        baseline = execute_task(spec)
        policy = CheckpointPolicy(tmp_path / "ckpt")
        leave_partial_checkpoint(policy, spec)
        resumed = execute_task(spec, policy)
        assert fingerprint(resumed) == fingerprint(baseline)
        # Completed cells clean up their checkpoint.
        assert not policy.path_for(spec.key()).exists()

    def test_checkpointed_fresh_run_identical(self, tmp_path):
        """No pre-existing checkpoint: checkpointing along the way must
        not change the result."""
        spec = make_spec()
        policy = CheckpointPolicy(tmp_path, every_refs=2000)
        assert fingerprint(execute_task(spec, policy)) == fingerprint(
            execute_task(spec)
        )

    def test_unrestorable_checkpoint_recomputes(self, tmp_path):
        """A snapshot that fails restore (here: doctored to claim more
        blocks than the workload has) is discarded and the cell recomputed."""
        spec = make_spec()
        policy = CheckpointPolicy(tmp_path)
        leave_partial_checkpoint(policy, spec)
        path = policy.path_for(spec.key())
        payload = pickle.loads(path.read_bytes())
        payload["snapshot"].blocks_fetched = 10**9
        path.write_bytes(pickle.dumps(payload))
        result = execute_task(spec, policy)
        assert fingerprint(result) == fingerprint(execute_task(spec))
        assert not path.exists()


class TestParallelRunnerCheckpoints:
    def test_inline_runner_resumes(self, tmp_path):
        spec = make_spec()
        baseline = execute_task(spec)
        policy = CheckpointPolicy(tmp_path / "ckpt")
        leave_partial_checkpoint(policy, spec)
        runner = ParallelRunner(
            jobs=1, cache=ResultCache(tmp_path / "cache"), checkpoints=policy
        )
        (result,) = runner.run([spec])
        assert fingerprint(result) == fingerprint(baseline)
        assert not policy.path_for(spec.key()).exists()
        # Second invocation is served from the result cache.
        (again,) = runner.run([spec])
        assert fingerprint(again) == fingerprint(baseline)
        assert runner.manifest.records[-1].cached is True
