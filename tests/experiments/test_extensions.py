"""Tests for the extension experiment drivers (quick-mode shapes)."""

import pytest

from repro.experiments.extensions import (
    run_continuation,
    run_hierarchy,
    run_prefetch_ablation,
    run_skid_ablation,
)
from repro.experiments.mrc import run_mrc


class TestSkidDriver:
    def test_top_object_survives_skid(self, quick_runner):
        report = run_skid_ablation(quick_runner, skids=(0, 4))
        assert report.values["skid_0"]["top"] == "U"
        assert report.values["skid_4"]["top"] == "U"
        assert report.values["skid_4"]["max_error"] < 0.05


class TestContinuationDriver:
    def test_more_objects_with_continuation(self, quick_runner):
        report = run_continuation(quick_runner, rounds=2)
        plain = report.values["single batch (paper)"]
        cont = report.values["+2 rounds"]
        assert len(cont["found"]) > len(plain["found"])
        assert cont["coverage"] >= plain["coverage"]


class TestHierarchyDriver:
    def test_l2_shares_track_single_level(self, quick_runner):
        report = run_hierarchy(quick_runner)
        single = report.values["single_actual"]
        l2 = report.values["l2_actual"]
        for name in ("U", "R", "V"):
            assert l2[name] == pytest.approx(single[name], abs=0.05)
        # L1 filtering must not create misses from nowhere.
        assert report.values["l2_misses"] <= report.values["single_misses"] * 1.05

    def test_sampling_on_l2(self, quick_runner):
        report = run_hierarchy(quick_runner)
        sampled = report.values["l2_sampled"]
        assert max(sampled, key=sampled.get) in ("U", "R")


class TestPrefetchDriver:
    def test_prefetch_cuts_misses_keeps_ranks(self, quick_runner):
        report = run_prefetch_ablation(quick_runner)
        assert report.values["misses_with"] < report.values["misses_without"] * 0.8
        plain = report.values["plain_actual"]
        pf = report.values["prefetch_actual"]
        top = max(plain, key=plain.get)
        assert pf[top] == pytest.approx(plain[top], abs=0.05)


class TestMrcDriver:
    def test_monotone_and_ordered(self, quick_runner):
        report = run_mrc(quick_runner, apps=["mgrid", "ijpeg"], sample_refs=150_000)
        sizes = report.values["sizes"]
        for app in ("mgrid", "ijpeg"):
            curve = [report.values[app][s] for s in sizes]
            assert curve == sorted(curve, reverse=True)
        # ijpeg's miss ratio sits far below mgrid's at every size.
        for s in sizes:
            assert report.values["ijpeg"][s] < report.values["mgrid"][s]


class TestSweepDriver:
    def test_top_object_stable(self, quick_runner):
        from repro.experiments.sweep import run_geometry_sweep

        report = run_geometry_sweep(
            quick_runner, sizes=[64 * 1024, 256 * 1024], assocs=[1, 4]
        )
        assert report.values["stable_top"]
        assert report.values["reference_top"] == "U"
        for _key, vals in report.values.items():
            if isinstance(vals, dict):
                assert vals["top_sampled"] == pytest.approx(
                    vals["top_share"], abs=0.05
                )
