"""E14 (multicore) experiment: spec hashing, execution, the driver.

The grid contract: the full multi-core spec — co-runner set, their
construction kwargs, schedule ratios, shared-LLC geometry — reaches the
content-addressed cache key, so two cells that simulate differently can
never collide in the result cache.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.cache import CacheConfig
from repro.errors import SimulationError
from repro.experiments import MultiCoreSpec
from repro.experiments.multicore import multicore_task, run_multicore
from repro.experiments.parallel import execute_task
from repro.experiments.runner import ExperimentRunner, RunnerConfig

pytestmark = pytest.mark.multicore


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(
        RunnerConfig(cache=CacheConfig(size=64 * 1024, assoc=4), seed=42),
        quick=True,
    )


class TestMultiCoreSpec:
    def test_kwargs_padded_and_normalised(self):
        spec = MultiCoreSpec(co_runners=["ijpeg", "mgrid"])
        assert spec.co_runners == ("ijpeg", "mgrid")
        assert spec.co_runner_kwargs == ({}, {})
        assert spec.n_cores == 3

    def test_ratio_length_must_cover_every_core(self):
        with pytest.raises(SimulationError, match="ratios"):
            MultiCoreSpec(co_runners=("ijpeg",), ratios=(1,))

    def test_kwargs_length_must_match_co_runners(self):
        with pytest.raises(SimulationError, match="kwargs"):
            MultiCoreSpec(co_runners=("ijpeg",), co_runner_kwargs=({}, {}))


class TestCacheKeys:
    def test_every_spec_dimension_changes_the_key(self, runner):
        base = multicore_task(runner, ["compress", "ijpeg"])
        variants = [
            base,
            multicore_task(runner, ["compress", "mgrid"]),
            multicore_task(runner, ["compress", "ijpeg"], ratios=(2, 1)),
            multicore_task(runner, ["compress", "ijpeg"], size=32 * 1024),
            runner.task("compress"),  # multicore=None
        ]
        keys = [spec.key() for spec in variants]
        assert len(set(keys)) == len(keys)

    def test_single_core_keys_unchanged_by_the_field(self, runner):
        # The multicore field defaults to None, so pre-existing cached
        # single-core cells keep their keys across this refactor.
        spec = runner.task("compress")
        assert spec.sim.multicore is None
        assert spec.key() == dataclasses.replace(spec).key()


class TestExecuteTask:
    def test_multicore_task_returns_per_core_results(self, runner):
        result = execute_task(multicore_task(runner, ["compress", "ijpeg"]))
        assert result.workload_name == "mc(compress+ijpeg)"
        assert [c.core_id for c in result.cores] == [0, 1]
        assert result.ground_truth is None  # stripped for the cache
        for core in result.cores:
            ledger = core.contention.ledger
            assert ledger.classified_misses == core.cache_stats.misses
        assert sum(c.cache_stats.misses for c in result.cores) == (
            result.cache_stats.misses
        )

    def test_checkpointed_cell_matches_uninterrupted(self, runner, tmp_path):
        from repro.experiments.parallel import CheckpointPolicy

        spec = multicore_task(runner, ["compress", "ijpeg"])
        golden = execute_task(spec)

        class Stop(Exception):
            pass

        class StopAfterFirstSave(CheckpointPolicy):
            def save(self, key, snapshot):
                path = super().save(key, snapshot)
                raise Stop(path)

        # Interrupt mid-run right after the first checkpoint lands...
        with pytest.raises(Stop):
            execute_task(
                spec,
                checkpoint=StopAfterFirstSave(root=tmp_path, every_refs=200_000),
            )
        assert list(tmp_path.glob("*.ckpt"))
        # ...then resume from it and finish: bit-identical to golden.
        resumed = execute_task(
            spec, checkpoint=CheckpointPolicy(root=tmp_path, every_refs=1 << 30)
        )
        assert resumed.stats == golden.stats
        for a, b in zip(resumed.cores, golden.cores):
            assert a.stats == b.stats
            assert a.contention.self_by_object == b.contention.self_by_object


class TestDriver:
    def test_quick_report_shape(self, runner):
        report = run_multicore(
            runner, apps=["compress", "ijpeg"], sizes=[64 * 1024]
        )
        assert report.experiment == "multicore"
        pairs = report.values["pairs"]
        assert set(pairs) == {
            "compress+compress",
            "compress+ijpeg",
            "ijpeg+ijpeg",
        }
        for per_size in pairs.values():
            for cell in per_size.values():
                for core in cell["cores"]:
                    assert (
                        core["self"] + core["contention"]
                        == core["shared_misses"]
                    )
        # Self-pairings are symmetric by construction (same workload,
        # same schedule weight, disjoint namespaces).
        cores = pairs["ijpeg+ijpeg"][64 * 1024]["cores"]
        assert cores[0]["shared_misses"] == cores[1]["shared_misses"]
        assert "E14" in report.table
