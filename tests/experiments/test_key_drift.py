"""Runtime half of the cache-key drift guard.

reprolint's RPL201 catches key/field drift statically; ``TaskSpec.key()``
additionally refuses at runtime to hash a spec whose dataclass fields
have drifted from its payload. Together they make "add a field, forget
the key" fail loudly instead of silently serving stale cached results.
"""

from dataclasses import dataclass

import pytest

from repro.errors import SimulationError
from repro.experiments.parallel import TaskSpec


@dataclass
class DriftedSpec(TaskSpec):
    """TaskSpec plus a field that key() knows nothing about."""

    mystery_knob: int = 0


def test_unhashed_field_is_refused_at_runtime():
    with pytest.raises(SimulationError, match="mystery_knob"):
        DriftedSpec(workload="tomcatv").key()


def test_error_points_at_both_remedies():
    with pytest.raises(SimulationError, match="_KEY_EXEMPT_FIELDS"):
        DriftedSpec(workload="tomcatv").key()


def test_baseline_spec_hashes_cleanly():
    key = TaskSpec(workload="tomcatv").key()
    assert isinstance(key, str) and len(key) == 64


def test_exempt_label_does_not_change_the_key():
    a = TaskSpec(workload="tomcatv", label="")
    b = TaskSpec(workload="tomcatv", label="grid cell 7")
    assert a.key() == b.key()
