"""MultiCoreSession: interleaving, bit-identity, contention attribution.

The refactor contract (DESIGN.md section 13): a 1-core
:class:`MultiCoreSession` is *bit-identical* to the single-core
:class:`SimulationSession` over the same workload and seeds, and in the
N-core case every shared-level miss is classified exactly one way (self
vs contention) with per-(core, object) counts that conserve against the
port ledgers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import CacheConfig
from repro.errors import CacheConfigError, SimulationError
from repro.sim import CoreRateObserver, MultiCoreSession, Simulator
from repro.sim.blocks import ReferenceBlock
from repro.sim.session import SimulationSession
from repro.workloads.registry import SPEC_WORKLOADS, make_workload
from repro.workloads.trace import TraceWorkload

pytestmark = pytest.mark.multicore

LLC = CacheConfig(size=64 * 1024, assoc=4)
L1 = CacheConfig(size=8 * 1024, assoc=4)
SEED = 7


def quick_workload(app: str, runner):
    return make_workload(app, seed=SEED, **runner.workload_kwargs(app))


def run_single(workload) -> object:
    return Simulator(LLC, l1_config=L1, seed=SEED).run(workload)


def run_multi(workloads, **kwargs):
    session = MultiCoreSession.start(
        workloads, llc_config=LLC, l1_config=L1, seed=SEED, **kwargs
    )
    session.run()
    return session.finalize()


class TestOneCoreBitIdentity:
    @pytest.mark.parametrize("app", sorted(SPEC_WORKLOADS))
    def test_every_registry_workload(self, app, quick_runner):
        single = run_single(quick_workload(app, quick_runner))
        multi = run_multi([quick_workload(app, quick_runner)])
        core = multi.cores[0]
        assert core.stats == single.stats
        assert core.actual.table() == single.actual.table()
        # Degenerate shadow: same seed and geometry as the leaf, so every
        # LLC miss classifies as self.
        assert core.contention.ledger.contention_misses == 0
        assert core.contention.ledger.rescued_misses == 0
        assert (
            core.contention.ledger.self_misses
            == core.cache_stats.misses
            == single.cache_stats.misses
        )

    def test_aggregate_equals_the_single_core(self, quick_runner):
        single = run_single(quick_workload("compress", quick_runner))
        multi = run_multi([quick_workload("compress", quick_runner)])
        assert multi.stats.app_refs == single.stats.app_refs
        assert multi.stats.app_misses == single.stats.app_misses
        assert multi.stats.app_cycles == single.stats.app_cycles
        assert multi.cache_stats.misses == single.cache_stats.misses


class TestContentionConservation:
    @pytest.fixture(scope="class")
    def duo(self, quick_runner):
        return run_multi(
            [
                quick_workload("compress", quick_runner),
                quick_workload("ijpeg", quick_runner),
            ]
        )

    def test_per_core_objects_sum_to_ledger(self, duo):
        for core in duo.cores:
            profile = core.contention
            ledger = profile.ledger
            assert (
                sum(profile.self_by_object.values()) + profile.unattributed_self
                == ledger.self_misses
            )
            assert (
                sum(profile.contention_by_object.values())
                + profile.unattributed_contention
                == ledger.contention_misses
            )
            # Every port miss classified exactly one way.
            assert ledger.classified_misses == core.cache_stats.misses

    def test_cores_sum_to_shared_aggregate(self, duo):
        assert sum(c.cache_stats.misses for c in duo.cores) == (
            duo.cache_stats.misses
        )
        assert sum(c.cache_stats.accesses for c in duo.cores) == (
            duo.cache_stats.accesses
        )

    def test_namespaces_keep_objects_distinct(self, duo):
        names = set(duo.cores[0].contention.self_by_object) | set(
            duo.cores[1].contention.self_by_object
        )
        assert all(n.startswith(("c0:", "c1:")) for n in names)

    def test_makespan_and_merged_components(self, duo):
        assert duo.stats.app_cycles == max(
            c.stats.app_cycles for c in duo.cores
        )
        labels = [name for name, _ in duo.component_stats]
        assert labels[0] == "llc"
        assert "c0.l1" in labels and "c1.l1" in labels


class TestDisjointCoRunners:
    def test_disjoint_set_ranges_report_zero_contention(self):
        # Two synthetic traces confined to disjoint set-index halves of
        # the shared LLC. CORE_STRIDE is a power of two, so relocation
        # preserves set indices and the pair cannot evict each other.
        base = 0x1_2000_0000  # data-segment base, set index 0
        n_sets = LLC.n_sets
        line = LLC.line_size

        def trace(sets):
            addrs = np.array(
                [base + s * line for _ in range(40) for s in sets],
                dtype=np.uint64,
            )
            return [ReferenceBlock(addrs=addrs, cycles_per_ref=1.0)]

        low = range(0, n_sets // 2, 2)
        high = range(n_sets // 2, n_sets, 2)
        span = n_sets * line
        make = lambda sets: TraceWorkload(
            trace(sets), layout={"arena": (base, span)}, seed=SEED
        )
        result = run_multi([make(low), make(high)])
        for core in result.cores:
            ledger = core.contention.ledger
            assert ledger.contention_misses == 0
            assert ledger.rescued_misses == 0
            assert ledger.self_misses == core.cache_stats.misses > 0


class TestSnapshotRestore:
    def test_mid_run_snapshot_resume_is_bit_identical(
        self, tmp_path, quick_runner
    ):
        workloads = lambda: [
            quick_workload("compress", quick_runner),
            quick_workload("ijpeg", quick_runner),
        ]
        golden = run_multi(workloads(), ratios=[2, 1])

        session = MultiCoreSession.start(
            workloads(), llc_config=LLC, l1_config=L1, seed=SEED, ratios=[2, 1]
        )
        for _ in range(6):
            assert session.step()
        path = tmp_path / "mc.snap"
        session.snapshot().save(path)
        from repro.sim.session import SessionSnapshot

        restored = MultiCoreSession.restore(SessionSnapshot.load(path), workloads())
        restored.run()
        resumed = restored.finalize()

        assert resumed.stats == golden.stats
        assert resumed.cache_stats == golden.cache_stats
        for a, b in zip(resumed.cores, golden.cores):
            assert a.stats == b.stats
            assert a.contention.ledger.snapshot() == b.contention.ledger.snapshot()
            assert a.contention.self_by_object == b.contention.self_by_object
            assert (
                a.contention.contention_by_object
                == b.contention.contention_by_object
            )

    def test_single_core_restore_refuses_multicore_snapshots(self, quick_runner):
        session = MultiCoreSession.start(
            [
                quick_workload("compress", quick_runner),
                quick_workload("ijpeg", quick_runner),
            ],
            llc_config=LLC,
            l1_config=L1,
            seed=SEED,
        )
        for _ in range(8):
            session.step()
        snap = session.snapshot()
        assert snap.version == 4
        assert len(snap.cores) == 2
        with pytest.raises(SimulationError, match="multi-core"):
            SimulationSession.restore(snap, quick_workload("compress", quick_runner))

    def test_multicore_restore_refuses_single_core_snapshots(self, quick_runner):
        workload = quick_workload("compress", quick_runner)
        session = Simulator(LLC, l1_config=L1, seed=SEED).start_session(workload)
        for _ in range(4):
            session.step()
        snap = session.snapshot()
        assert snap.cores is None
        with pytest.raises(SimulationError, match="SimulationSession.restore"):
            MultiCoreSession.restore(
                snap, [quick_workload("compress", quick_runner)]
            )


class TestValidationAndObservers:
    def test_rejects_decorated_configs_naming_the_stack(self, quick_runner):
        decorated = CacheConfig(size=64 * 1024, assoc=4, mechanisms="vc:16")
        with pytest.raises(CacheConfigError, match=r"vc\(16\)"):
            MultiCoreSession.start(
                [quick_workload("compress", quick_runner)],
                llc_config=decorated,
                seed=SEED,
            )

    def test_rejects_ratio_shape_mismatch(self, quick_runner):
        with pytest.raises(SimulationError, match="ratios"):
            MultiCoreSession.start(
                [quick_workload("compress", quick_runner)],
                llc_config=LLC,
                seed=SEED,
                ratios=[1, 2],
            )

    def test_core_rate_observer_sees_every_core(self, quick_runner):
        rates = CoreRateObserver()
        session = MultiCoreSession.start(
            [
                quick_workload("compress", quick_runner),
                quick_workload("ijpeg", quick_runner),
            ],
            llc_config=LLC,
            l1_config=L1,
            seed=SEED,
            observers=[rates],
        )
        session.run()
        result = session.finalize()
        rows = rates.rows()
        assert [core for core, *_ in rows] == [0, 1]
        for (core_id, refs, miss_rate, _), core in zip(rows, result.cores):
            assert core_id == core.core_id
            assert refs == core.stats.app_refs
            assert miss_rate == pytest.approx(
                core.stats.app_misses / core.stats.app_refs
            )
