"""Tests for reference blocks and trace concatenation."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.sim.blocks import ReferenceBlock, concat_blocks


class TestReferenceBlock:
    def test_coerces_to_uint64(self):
        block = ReferenceBlock(addrs=[1, 2, 3])
        assert block.addrs.dtype == np.uint64
        assert len(block) == 3

    def test_cycles(self):
        block = ReferenceBlock(addrs=np.arange(10), cycles_per_ref=4.0, extra_cycles=7)
        assert block.total_cycles == 47
        assert block.cycles_for(5) == 20
        assert block.cycles_for(10) == 47  # extra charged at completion

    def test_refs_within_cycles(self):
        block = ReferenceBlock(addrs=np.arange(10), cycles_per_ref=4.0)
        assert block.refs_within_cycles(9) == 2
        assert block.refs_within_cycles(1) == 1  # always makes progress

    def test_bad_cpr(self):
        with pytest.raises(WorkloadError):
            ReferenceBlock(addrs=np.arange(3), cycles_per_ref=0)

    def test_writes_mask_validated(self):
        with pytest.raises(WorkloadError):
            ReferenceBlock(addrs=np.arange(3), writes=np.array([True]))

    def test_writes_mask_kept(self):
        block = ReferenceBlock(addrs=np.arange(2), writes=np.array([True, False]))
        assert block.writes.dtype == bool


class TestConcat:
    def test_concat(self):
        a = ReferenceBlock(addrs=np.arange(3), cycles_per_ref=2.0, extra_cycles=1)
        b = ReferenceBlock(addrs=np.arange(3, 6), cycles_per_ref=2.0, extra_cycles=2)
        merged = concat_blocks([a, b])
        assert merged.addrs.tolist() == [0, 1, 2, 3, 4, 5]
        assert merged.extra_cycles == 3

    def test_concat_mixed_writes(self):
        a = ReferenceBlock(addrs=np.arange(2), writes=np.array([True, True]))
        b = ReferenceBlock(addrs=np.arange(2))
        merged = concat_blocks([a, b])
        assert merged.writes.tolist() == [True, True, False, False]

    def test_concat_empty_rejected(self):
        with pytest.raises(WorkloadError):
            concat_blocks([])

    def test_concat_mismatched_cpr_rejected(self):
        a = ReferenceBlock(addrs=np.arange(2), cycles_per_ref=2.0)
        b = ReferenceBlock(addrs=np.arange(2), cycles_per_ref=3.0)
        with pytest.raises(WorkloadError):
            concat_blocks([a, b])
