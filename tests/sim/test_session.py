"""SimulationSession tests: lifecycle, multi-tool arbitration, snapshot/resume.

The bit-identity contract is the heart of this file: a run driven
stepwise through a session, or snapshotted mid-stream and restored in a
fresh process-equivalent context, must produce exactly the RunStats,
profiles and interrupt records of an uninterrupted ``Simulator.run``.
"""

import pickle

import numpy as np
import pytest

from repro.cache import CacheConfig
from repro.core.profile import DataProfile
from repro.core.sampling import SamplingProfiler
from repro.core.search import NWaySearch
from repro.errors import CounterError, SimulationError
from repro.sim.engine import Simulator
from repro.sim.instrumentation import HandlerResult, InstrumentationTool
from repro.sim.session import SNAPSHOT_VERSION, SessionSnapshot, SimulationSession
from repro.workloads.synthetic import SyntheticStreams, TreeChaser

CFG = CacheConfig(size=64 * 1024, assoc=2)


def make_sim(**kw):
    return Simulator(CFG, seed=5, **kw)


def make_workload(seed=3):
    return SyntheticStreams(
        {"A": (256 * 1024, 60), "B": (256 * 1024, 40)},
        rounds=4,
        lines_per_round=4000,
        seed=seed,
    )


def make_chaser(seed=7):
    return TreeChaser(seed=seed, n_nodes=300, n_steps=8, refs_per_step=3000)


def fingerprint(result):
    """Everything the bit-identity acceptance criterion compares."""
    return (
        result.stats.app_refs,
        result.stats.app_misses,
        result.stats.instr_refs,
        result.stats.instr_misses,
        result.stats.app_cycles,
        result.stats.instr_cycles,
        [
            (r.kind, r.cycle, r.handler_cycles, r.delivery_cycles, r.tool)
            for r in result.stats.interrupts.records
        ],
        None
        if result.actual is None
        else [(s.name, s.count) for s in result.actual.shares],
        None
        if result.measured is None
        else [(s.name, s.count) for s in result.measured.shares],
    )


class TickTool(InstrumentationTool):
    """Overflow- and/or timer-driven tool with deterministic handlers."""

    def __init__(self, name="tick", period=None, timer=None, stop_after=None):
        super().__init__()
        self.name = name
        self.period = period
        self.timer = timer
        self.stop_after = stop_after
        self.overflows = []
        self.timers = []

    def attach(self, ctx):
        return HandlerResult(rearm_overflow=self.period, next_timer_in=self.timer)

    def on_miss_overflow(self, cycle):
        self.overflows.append(cycle)
        done = self.stop_after is not None and len(self.overflows) >= self.stop_after
        return HandlerResult(
            handler_cycles=100,
            rearm_overflow=None if done else self.period,
            done=done,
        )

    def on_timer(self, cycle):
        self.timers.append(cycle)
        return HandlerResult(handler_cycles=300, next_timer_in=self.timer)

    def profile(self):
        return DataProfile(source=self.name)


# ----------------------------------------------------------------- lifecycle

class TestLifecycle:
    def test_stepwise_equals_run(self):
        via_run = make_sim().run(make_workload(), tool=SamplingProfiler(period=701))
        session = make_sim().start_session(
            make_workload(), tool=SamplingProfiler(period=701)
        )
        steps = 0
        while session.step():
            steps += 1
        via_session = session.finalize()
        assert steps > 1
        assert fingerprint(via_run) == fingerprint(via_session)

    def test_finished_property(self):
        session = make_sim().start_session(make_workload())
        assert not session.finished
        while session.step():
            pass
        assert session.finished

    def test_finalize_twice_rejected(self):
        session = make_sim().start_session(make_workload())
        while session.step():
            pass
        session.finalize()
        with pytest.raises(SimulationError):
            session.finalize()
        with pytest.raises(SimulationError):
            session.step()

    def test_attach_after_start_rejected(self):
        session = make_sim().start_session(make_workload())
        session.step()
        with pytest.raises(SimulationError):
            session.attach(TickTool(period=100))

    def test_run_helper_drives_to_completion(self):
        session = make_sim().start_session(make_workload())
        assert session.run() is True
        assert session.finished

    def test_run_max_steps(self):
        session = make_sim().start_session(make_workload())
        assert session.run(max_steps=1) is False
        assert not session.finished


# ---------------------------------------------------------------- multi-tool

class TestMultiTool:
    def test_two_tools_both_receive_interrupts(self):
        sampler = TickTool(name="s", period=600)
        timer = TickTool(name="t", timer=40_000)
        res = make_sim().run(make_workload(), tool=[sampler, timer])
        assert sampler.overflows and timer.timers
        kinds_by_tool = {r.tool for r in res.stats.interrupts.records}
        assert kinds_by_tool == {"s", "t"}

    def test_per_tool_cycle_accounting(self):
        sampler = TickTool(name="s", period=600)
        timer = TickTool(name="t", timer=40_000)
        res = make_sim().run(make_workload(), tool=[sampler, timer])
        by_tool = res.stats.instr_cycles_by_tool
        delivery = make_sim().cost_model.interrupt_delivery_cycles
        assert by_tool["s"] == len(sampler.overflows) * (delivery + 100)
        assert by_tool["t"] == len(timer.timers) * (delivery + 300)
        assert sum(by_tool.values()) == res.stats.instr_cycles

    def test_overflow_counter_contention_raises(self):
        with pytest.raises(CounterError, match="contention"):
            make_sim().run(
                make_workload(),
                tool=[TickTool(name="a", period=500), TickTool(name="b", period=700)],
            )

    def test_done_tool_releases_overflow_counter(self):
        """After the owner finishes, a timer-driven tool keeps running and
        the finished tool receives nothing further."""
        owner = TickTool(name="owner", period=400, stop_after=2)
        timer = TickTool(name="later", timer=10_000)
        res = make_sim().run(make_workload(), tool=[owner, timer])
        assert len(owner.overflows) == 2
        assert len(timer.timers) > 2
        by_tool = {}
        for r in res.stats.interrupts.records:
            by_tool[r.tool] = by_tool.get(r.tool, 0) + 1
        assert by_tool["owner"] == 2  # nothing delivered after `done`
        assert by_tool["later"] == len(timer.timers)
        last_owner = max(
            r.cycle for r in res.stats.interrupts.records if r.tool == "owner"
        )
        assert any(
            r.cycle > last_owner and r.tool == "later"
            for r in res.stats.interrupts.records
        )

    def test_timer_multiplexing_two_tools(self):
        fast = TickTool(name="fast", timer=20_000)
        slow = TickTool(name="slow", timer=90_000)
        make_sim().run(make_workload(), tool=[fast, slow])
        assert len(fast.timers) > len(slow.timers) > 0

    def test_sampler_and_search_share_run(self):
        """The paper's two techniques coexist: sampling owns the overflow
        counter, the search owns the timer and region bank."""
        sampler = SamplingProfiler(period=701)
        search = NWaySearch(n=4, interval_cycles=10_000)
        res = make_sim().run(make_workload(), tool=[sampler, search])
        assert res.tools is not None and len(res.tools) == 2
        assert res.tool is sampler  # primary = first attached
        assert res.measured is not None
        assert {r.tool for r in res.stats.interrupts.records} == {
            "sampling",
            "nway-search",
        }

    def test_single_tool_results_unchanged_by_list_form(self):
        a = make_sim().run(make_workload(), tool=SamplingProfiler(period=701))
        b = make_sim().run(make_workload(), tool=[SamplingProfiler(period=701)])
        assert fingerprint(a) == fingerprint(b)


# ------------------------------------------------------------------ snapshot

class TestSnapshotRestore:
    @pytest.mark.parametrize("cut", [1, 5, 23])
    def test_restore_bit_identical_sampling(self, cut):
        base = make_sim().run(make_workload(), tool=SamplingProfiler(period=701))
        session = make_sim().start_session(
            make_workload(), tool=SamplingProfiler(period=701)
        )
        for _ in range(cut):
            assert session.step()
        snapshot = pickle.loads(pickle.dumps(session.snapshot()))
        restored = SimulationSession.restore(snapshot, make_workload())
        while restored.step():
            pass
        assert fingerprint(restored.finalize()) == fingerprint(base)

    def test_restore_bit_identical_search(self):
        base = make_sim().run(
            make_workload(), tool=NWaySearch(n=4, interval_cycles=10_000)
        )
        session = make_sim().start_session(
            make_workload(), tool=NWaySearch(n=4, interval_cycles=10_000)
        )
        for _ in range(9):
            assert session.step()
        restored = SimulationSession.restore(session.snapshot(), make_workload())
        while restored.step():
            pass
        assert fingerprint(restored.finalize()) == fingerprint(base)

    def test_restore_with_heap_churn(self):
        """TreeChaser frees/reallocs mid-run: the fast-forward replay must
        rebuild the same heap state and the handler costs must carry the
        snapshotted map's pending probe counts."""
        base = make_sim().run(make_chaser(), tool=SamplingProfiler(period=509))
        session = make_sim().start_session(
            make_chaser(), tool=SamplingProfiler(period=509)
        )
        for _ in range(15):
            assert session.step()
        restored = SimulationSession.restore(
            pickle.loads(pickle.dumps(session.snapshot())), make_chaser()
        )
        while restored.step():
            pass
        assert fingerprint(restored.finalize()) == fingerprint(base)

    def test_restore_uninstrumented_no_ground_truth(self):
        base = make_sim().run(make_workload(), ground_truth=False)
        session = make_sim().start_session(make_workload(), ground_truth=False)
        for _ in range(3):
            assert session.step()
        restored = SimulationSession.restore(session.snapshot(), make_workload())
        while restored.step():
            pass
        assert fingerprint(restored.finalize()) == fingerprint(base)

    def test_snapshot_does_not_disturb_live_session(self):
        base = make_sim().run(make_workload(), tool=SamplingProfiler(period=701))
        session = make_sim().start_session(
            make_workload(), tool=SamplingProfiler(period=701)
        )
        while session.step():
            if not session.finished:
                try:
                    session.snapshot()  # snapshot at every step boundary
                except SimulationError:
                    break
        assert fingerprint(session.finalize()) == fingerprint(base)

    def test_save_load_roundtrip(self, tmp_path):
        session = make_sim().start_session(make_workload())
        session.step()
        path = session.snapshot().save(tmp_path / "x.snap")
        loaded = SessionSnapshot.load(path)
        assert loaded.version == SNAPSHOT_VERSION
        assert loaded.workload_name == make_workload().name

    def test_load_rejects_bad_version(self, tmp_path):
        session = make_sim().start_session(make_workload())
        session.step()
        snap = session.snapshot()
        snap.version = SNAPSHOT_VERSION + 1
        snap.save(tmp_path / "x.snap")
        with pytest.raises(SimulationError, match="version"):
            SessionSnapshot.load(tmp_path / "x.snap")

    def test_restore_rejects_wrong_workload(self):
        session = make_sim().start_session(make_workload())
        session.step()
        with pytest.raises(SimulationError, match="workload"):
            SimulationSession.restore(session.snapshot(), make_chaser())

    def test_snapshot_after_finalize_rejected(self):
        session = make_sim().start_session(make_workload())
        while session.step():
            pass
        with pytest.raises(SimulationError):
            session.snapshot()


# ------------------------------------------------------- repeated-run safety

class TestRepeatedRuns:
    """Satellite: Simulator.run on the SAME workload instance is safe."""

    def test_run_twice_same_instance_synthetic(self):
        sim = make_sim()
        wl = make_workload()
        first = sim.run(wl)
        second = sim.run(wl)
        fresh = make_sim().run(make_workload())
        assert fingerprint(first) == fingerprint(second) == fingerprint(fresh)

    def test_run_twice_same_instance_heap_churn(self):
        """TreeChaser mutates its substrate (frees/reallocs nodes) while
        generating; a second run must see a freshly rebuilt heap, not the
        churned leftovers."""
        sim = make_sim()
        wl = make_chaser()
        first = sim.run(wl, tool=SamplingProfiler(period=509))
        second = sim.run(wl, tool=SamplingProfiler(period=509))
        assert fingerprint(first) == fingerprint(second)

    def test_consumed_flag_lifecycle(self):
        wl = make_workload()
        assert not wl.consumed
        make_sim().run(wl)
        assert wl.consumed  # engine opened (and reset) the stream
        wl.reset()
        assert not wl.consumed and not wl._prepared


# --------------------------------------- max_refs / chunk boundary / timer

class TestMaxRefsChunkBoundary:
    """Satellite: max_refs landing exactly on a chunk boundary while a
    timer deadline is pending (refs_left x until_deadline x extra_cycles)."""

    def _workload(self):
        # One 100-ref block with fixed extra cycles, then another.
        from repro.workloads.base import Workload

        class TwoBlock(Workload):
            name = "two-block-timer"
            cycles_per_ref = 2.0

            def _declare(self):
                self._x = self.symbols.declare("X", 64 * 256)

            def _generate(self):
                addrs = np.arange(
                    self._x.base, self._x.base + 64 * 100, 64, dtype=np.uint64
                )
                yield self.block(addrs, label="first", extra_cycles=1000)
                yield self.block(addrs, label="second", extra_cycles=1000)

        return TwoBlock()

    def run_stats(self, chunk_size, max_refs, timer=None):
        sim = Simulator(CFG, seed=3, chunk_size=chunk_size)
        tool = TickTool(name="t", timer=timer) if timer is not None else None
        return sim.run(self._workload(), tool=tool, max_refs=max_refs).stats

    def test_truncation_on_chunk_boundary_with_pending_timer(self):
        """max_refs=50 with chunk_size=50: the cut lands exactly where a
        chunk ends, while a far-future timer deadline is still pending.
        The pending deadline must neither fire nor leak extra cycles."""
        stats = self.run_stats(chunk_size=50, max_refs=50, timer=10_000_000)
        assert stats.app_refs == 50
        assert len(stats.interrupts) == 0  # deadline never reached
        # Mid-block cut: no extra_cycles, exactly 50 refs x 2 cycles.
        assert stats.app_cycles == 100

    def test_truncation_on_chunk_and_block_boundary(self):
        """max_refs=100 = chunk 2 x 50 = exactly one full block: the
        completed block's extra_cycles must still be credited."""
        stats = self.run_stats(chunk_size=50, max_refs=100, timer=10_000_000)
        assert stats.app_refs == 100
        assert stats.app_cycles == 100 * 2 + 1000

    @pytest.mark.parametrize("chunk_size", [32, 50, 100, 1 << 15])
    def test_chunk_size_invariance_with_timer(self, chunk_size):
        """Identical results regardless of chunk geometry, with a live
        timer chopping chunks at deadlines."""
        ref = self.run_stats(chunk_size=1 << 15, max_refs=150, timer=90)
        got = self.run_stats(chunk_size=chunk_size, max_refs=150, timer=90)
        assert got.app_refs == ref.app_refs == 150
        assert got.app_cycles == ref.app_cycles
        assert got.instr_cycles == ref.instr_cycles
        assert [(r.kind, r.cycle) for r in got.interrupts.records] == [
            (r.kind, r.cycle) for r in ref.interrupts.records
        ]

    def test_timer_expiring_exactly_at_truncation(self):
        """Deadline lands on the same reference where max_refs cuts the
        run: the run ends; the deadline must not be delivered afterwards
        (stream processing stops first)."""
        # 50 refs x 2 cycles/ref = 100 cycles; deadline at exactly 100.
        stats = self.run_stats(chunk_size=50, max_refs=50, timer=100)
        assert stats.app_refs == 50
        # The timer fires at the chunk boundary *before* the truncation
        # check only if the engine reaches another iteration; whichever
        # way, refs must not exceed max_refs and cycles stay consistent.
        assert stats.app_cycles == 100
