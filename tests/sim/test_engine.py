"""Engine tests: exact interrupt placement, accounting, determinism."""

import numpy as np
import pytest

from repro.cache import CacheConfig
from repro.core.profile import DataProfile
from repro.sim.engine import Simulator
from repro.sim.instrumentation import HandlerResult, InstrumentationTool
from repro.workloads.base import Workload
from repro.workloads.synthetic import SyntheticStreams


def small_workload(rounds=4, seed=0, **kw):
    return SyntheticStreams(
        {"A": (256 * 1024, 60), "B": (256 * 1024, 40)},
        rounds=rounds,
        lines_per_round=4000,
        seed=seed,
        **kw,
    )


class RecordingTool(InstrumentationTool):
    """Minimal tool that records every interrupt it receives."""

    name = "recorder"

    def __init__(self, period=None, timer=None, mem_refs=None, stop_after=None):
        super().__init__()
        self.period = period
        self.timer = timer
        self.mem_refs = mem_refs
        self.stop_after = stop_after
        self.overflow_addrs: list[int] = []
        self.timer_cycles: list[int] = []

    def attach(self, ctx):
        return HandlerResult(
            rearm_overflow=self.period, next_timer_in=self.timer
        )

    def on_miss_overflow(self, cycle):
        self.overflow_addrs.append(self.ctx.monitor.last_miss_addr)
        done = (
            self.stop_after is not None
            and len(self.overflow_addrs) >= self.stop_after
        )
        return HandlerResult(
            handler_cycles=100,
            mem_refs=self.mem_refs,
            rearm_overflow=None if done else self.period,
            done=done,
        )

    def on_timer(self, cycle):
        self.timer_cycles.append(cycle)
        return HandlerResult(handler_cycles=500, next_timer_in=self.timer)

    def profile(self):
        return DataProfile(source="recorder")


class TestBaseline:
    def test_ground_truth_matches_cache(self, sim):
        res = sim.run(small_workload())
        assert res.ground_truth.total_misses == res.stats.app_misses
        assert res.stats.instr_refs == 0
        assert res.stats.instr_cycles == 0
        assert res.actual.total_misses == res.stats.app_misses

    def test_determinism(self):
        a = Simulator(CacheConfig(size=64 * 1024), seed=5).run(small_workload(seed=3))
        b = Simulator(CacheConfig(size=64 * 1024), seed=5).run(small_workload(seed=3))
        assert a.stats.app_misses == b.stats.app_misses
        assert a.stats.app_cycles == b.stats.app_cycles
        assert a.actual.as_dict() == b.actual.as_dict()

    def test_max_refs_truncates(self, sim):
        full = sim.run(small_workload())
        part = sim.run(small_workload(), max_refs=1000)
        assert part.stats.app_refs == 1000
        assert part.stats.app_refs < full.stats.app_refs

    def test_cycles_accounted(self, sim):
        res = sim.run(small_workload())
        wl_cpr = small_workload().cycles_per_ref
        assert res.stats.app_cycles == pytest.approx(
            res.stats.app_refs * wl_cpr, rel=0.01
        )

    def test_ground_truth_disabled(self, sim):
        res = sim.run(small_workload(), ground_truth=False)
        assert res.actual is None
        assert res.ground_truth is None


class TestOverflowInterrupts:
    def test_interrupt_at_exact_miss(self, sim):
        """With a pure-miss stream, the k-th overflow's last-miss-address
        must be exactly the (k*period)-th referenced address."""
        wl = small_workload(rounds=2)
        tool = RecordingTool(period=500)
        res = sim.run(wl, tool=tool)
        # Reconstruct the app's address stream.
        stream = np.concatenate([b.addrs for b in small_workload(rounds=2).blocks()])
        # Every access is a cold/capacity miss here (streaming > cache).
        for k, addr in enumerate(tool.overflow_addrs, start=1):
            assert addr == int(stream[k * 500 - 1])

    def test_interrupt_count(self, sim):
        wl = small_workload(rounds=2)
        tool = RecordingTool(period=500)
        res = sim.run(wl, tool=tool)
        assert len(res.stats.interrupts) == len(tool.overflow_addrs)
        assert res.stats.app_misses // 500 == len(tool.overflow_addrs)

    def test_done_stops_interrupts(self, sim):
        tool = RecordingTool(period=100, stop_after=3)
        sim.run(small_workload(), tool=tool)
        assert len(tool.overflow_addrs) == 3

    def test_instr_cycles_charged(self, sim):
        tool = RecordingTool(period=1000)
        res = sim.run(small_workload(), tool=tool)
        n = len(tool.overflow_addrs)
        expected = n * (sim.cost_model.interrupt_delivery_cycles + 100)
        assert res.stats.instr_cycles == expected
        assert res.stats.slowdown > 0


class TestTimerInterrupts:
    def test_timer_spacing(self, sim):
        tool = RecordingTool(timer=10_000)
        res = sim.run(small_workload(), tool=tool)
        assert len(tool.timer_cycles) > 3
        gaps = np.diff(tool.timer_cycles)
        # Each gap covers the timer interval plus the handler's own time,
        # plus up to one reference of overshoot.
        assert (gaps >= 10_000).all()
        assert (gaps <= 10_000 + 9_300 + 200).all()

    def test_timer_and_overflow_coexist(self, sim):
        tool = RecordingTool(period=2000, timer=20_000)
        sim.run(small_workload(), tool=tool)
        assert tool.overflow_addrs and tool.timer_cycles


class TestPerturbation:
    def test_instr_refs_through_cache(self, sim):
        refs = np.arange(0x2_0000_0000, 0x2_0000_0000 + 64 * 50, 64, dtype=np.uint64)
        tool = RecordingTool(period=1000, mem_refs=refs)
        res = sim.run(small_workload(), tool=tool)
        n = len(tool.overflow_addrs)
        assert res.stats.instr_refs == n * len(refs)
        assert res.stats.instr_misses > 0
        # Ground truth must never see instrumentation misses.
        assert res.ground_truth.total_misses == res.stats.app_misses

    def test_pollution_perturbs_app(self):
        """Instrumentation misses evict app lines: with a small cache and
        a reusing app, instrumented app misses exceed baseline misses."""
        cfg = CacheConfig(size=16 * 1024, assoc=4)
        wl_spec = {"A": (8 * 1024, 100)}  # A fits in cache: mostly hits

        def make_wl():
            return SyntheticStreams(wl_spec, rounds=200, lines_per_round=128)

        base = Simulator(cfg, seed=1).run(make_wl())
        refs = np.arange(0x2_0000_0000, 0x2_0000_0000 + 64 * 512, 64, dtype=np.uint64)
        tool = RecordingTool(period=16, mem_refs=refs)
        instr = Simulator(cfg, seed=1).run(make_wl(), tool=tool, max_refs=base.stats.app_refs)
        assert instr.stats.app_misses > base.stats.app_misses


class TwoBlockWorkload(Workload):
    """Two 100-ref blocks, each carrying 1000 fixed extra cycles."""

    name = "two-block"
    cycles_per_ref = 2.0

    def _declare(self):
        self._x = self.symbols.declare("X", 64 * 256)

    def _generate(self):
        base = self._x.base
        addrs = np.arange(base, base + 64 * 100, 64, dtype=np.uint64)
        yield self.block(addrs, label="first", extra_cycles=1000)
        yield self.block(addrs, label="second", extra_cycles=1000)


class TestExtraCyclesAccounting:
    """Fixed block costs must be charged only for completed blocks.

    Regression: a ``max_refs`` truncation mid-block used to charge the
    block's ``extra_cycles`` anyway, inflating app_cycles in the
    "same number of instructions" perturbation comparisons.
    """

    def run_cycles(self, max_refs=None):
        sim = Simulator(CacheConfig(size=64 * 1024, assoc=4), seed=3)
        return sim.run(TwoBlockWorkload(), max_refs=max_refs).stats.app_cycles

    def test_full_run_charges_both_blocks(self):
        # 2 blocks x (100 refs x 2 cycles + 1000 extra)
        assert self.run_cycles() == 2400

    def test_truncation_mid_block_skips_extra_cycles(self):
        # Block 1 completes (200 + 1000); block 2 cut at 50 refs (100).
        assert self.run_cycles(max_refs=150) == 1300

    def test_truncation_at_block_boundary_still_charges(self):
        # Refs run out exactly at the end of block 1: it did complete.
        assert self.run_cycles(max_refs=100) == 1200

    def test_truncation_at_stream_end_matches_full_run(self):
        assert self.run_cycles(max_refs=200) == 2400
