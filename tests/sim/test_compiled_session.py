"""Bit-identity of compiled-stream sessions against the generator path.

Stream compilation (repro.workloads.compile) is a pure speed knob: for
every workload in the registry, a session fed from a compiled stream
must be indistinguishable from one running the generator — identical
``RunStats``, identical mid-run snapshots, and identical completions
when a snapshot from one path is resumed on the other. These tests pin
that contract over every registered workload, both kernel backends and
the RANDOM replacement policy (whose eviction pool observes chunk
boundaries, the subtlest part of the replay).
"""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.policies import ReplacementPolicy
from repro.sim.engine import Simulator
from repro.sim.session import SimulationSession
from repro.workloads.compile import compile_workload
from repro.workloads.registry import make_workload

SEED = 5

#: Small instances of every registered workload: large enough to evict
#: (the cache below is 32 KiB), small enough to keep the matrix fast.
TINY = {
    "tomcatv": {"n_steps": 2, "rows_per_step": 4},
    "swim": {"n_steps": 2, "lines_per_array_per_step": 200},
    "su2cor": {"total_lines": 8000, "slices_per_era": 4},
    "mgrid": {"n_vcycles": 2, "fine_lines": 1200},
    "applu": {"n_iterations": 2, "jacobian_lines": 600},
    "compress": {"input_lines": 2000},
    "ijpeg": {"image_lines": 1500},
    "synthetic-streams": {
        "spec": {"A": (65536, 0.6), "B": (32768, 0.4)},
        "rounds": 2,
        "lines_per_round": 2000,
    },
}


def _workload(app):
    return make_workload(app, seed=SEED, **TINY[app])


def _simulator(backend="reference", policy=ReplacementPolicy.LRU):
    return Simulator(
        CacheConfig(size=32 * 1024, assoc=4, policy=policy, backend=backend),
        seed=11,
    )


def _stats_tuple(stats):
    return (
        stats.app_refs,
        stats.app_misses,
        stats.app_cycles,
        stats.total_cycles,
        stats.instr_refs,
        stats.instr_misses,
    )


def _session_state(session):
    """Observable mid-run state: cursor, stats, clock and cache contents."""
    cache_stats = session.cache.stats.snapshot()
    return (
        session.stats.app_refs,
        session.stats.app_misses,
        session.clock.now,
        cache_stats.accesses,
        cache_stats.misses,
        cache_stats.writebacks,
        session.cache.contents_line_count(),
        session.cache.dirty_line_count(),
    )


@pytest.mark.parametrize("app", sorted(TINY))
class TestCompiledBitIdentity:
    def test_runstats_identical(self, app):
        workload = _workload(app)
        compiled = compile_workload(workload)
        generator = _simulator().run(_workload(app))
        fast = _simulator(backend="array").run(workload, compiled=compiled)
        assert _stats_tuple(generator.stats) == _stats_tuple(fast.stats)
        assert generator.actual.table() == fast.actual.table()

    def test_mid_run_snapshots_identical(self, app):
        workload = _workload(app)
        compiled = compile_workload(workload)
        gen_session = _simulator().start_session(_workload(app))
        fast_session = _simulator(backend="array").start_session(
            workload, compiled=compiled
        )
        while not gen_session.finished:
            running_gen = gen_session.step()
            running_fast = fast_session.step()
            assert running_gen == running_fast
            assert _session_state(gen_session) == _session_state(fast_session)

    def test_snapshot_resumes_on_the_other_path(self, app):
        workload = _workload(app)
        compiled = compile_workload(workload)
        expected = _simulator().run(_workload(app))

        # Generator session, interrupted mid-run ...
        session = _simulator().start_session(_workload(app))
        for _ in range(3):
            assert session.step()
        snap = session.snapshot()

        # ... resumed over the compiled stream (and the array kernel).
        resumed = SimulationSession.restore(snap, workload, compiled=compiled)
        resumed.run()
        result = resumed.finalize()
        assert _stats_tuple(result.stats) == _stats_tuple(expected.stats)

    def test_compiled_snapshot_resumes_on_generator(self, app):
        workload = _workload(app)
        compiled = compile_workload(workload)
        expected = _simulator().run(_workload(app))

        session = _simulator(backend="array").start_session(
            workload, compiled=compiled
        )
        for _ in range(3):
            assert session.step()
        snap = session.snapshot()

        resumed = SimulationSession.restore(snap, _workload(app))
        resumed.run()
        result = resumed.finalize()
        assert _stats_tuple(result.stats) == _stats_tuple(expected.stats)


class TestRandomPolicyReplay:
    """RANDOM replacement consumes the seeded eviction pool in miss
    order, and pool refills observe chunk lengths — the fused bulk path
    must replay the generator path's chunk boundaries exactly."""

    @pytest.mark.parametrize("app", ["swim", "compress"])
    def test_random_policy_runstats_identical(self, app):
        workload = _workload(app)
        compiled = compile_workload(workload)
        generator = _simulator(policy=ReplacementPolicy.RANDOM).run(_workload(app))
        fast = _simulator(backend="array", policy=ReplacementPolicy.RANDOM).run(
            workload, compiled=compiled
        )
        assert _stats_tuple(generator.stats) == _stats_tuple(fast.stats)


class TestSimulatorCompileStreams:
    def test_compile_streams_flag_is_end_to_end(self, tmp_path):
        expected = _simulator().run(_workload("tomcatv"))
        sim = Simulator(
            CacheConfig(size=32 * 1024, assoc=4, backend="auto"),
            seed=11,
            compile_streams=True,
            stream_cache_dir=str(tmp_path),
        )
        result = sim.run(_workload("tomcatv"))
        assert _stats_tuple(result.stats) == _stats_tuple(expected.stats)
        # The stream cache was populated and is reused on the next run.
        assert any((tmp_path / "streams").iterdir())
        again = sim.run(_workload("tomcatv"))
        assert _stats_tuple(again.stats) == _stats_tuple(expected.stats)

    def test_unsafe_workload_falls_back_to_generator(self, tmp_path):
        from repro.workloads.synthetic import TreeChaser

        sim = Simulator(
            CacheConfig(size=32 * 1024, assoc=4),
            seed=11,
            compile_streams=True,
            stream_cache_dir=str(tmp_path),
        )
        plain = Simulator(CacheConfig(size=32 * 1024, assoc=4), seed=11)
        kwargs = {"n_nodes": 200, "n_steps": 4, "refs_per_step": 500}
        chaser = TreeChaser(seed=SEED, **kwargs)
        expected = plain.run(TreeChaser(seed=SEED, **kwargs))
        result = sim.run(chaser)
        assert _stats_tuple(result.stats) == _stats_tuple(expected.stats)
