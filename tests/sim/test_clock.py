"""Tests for the virtual cycle clock."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock


class TestAdvance:
    def test_split_accounting(self):
        clk = VirtualClock()
        clk.advance_app(100)
        clk.advance_instr(40)
        assert clk.now == 140
        assert clk.app_cycles == 100
        assert clk.instr_cycles == 40

    def test_negative_rejected(self):
        clk = VirtualClock()
        with pytest.raises(SimulationError):
            clk.advance_app(-1)
        with pytest.raises(SimulationError):
            clk.advance_instr(-1)


class TestDeadline:
    def test_timer_fires_at_deadline(self):
        clk = VirtualClock()
        clk.set_deadline(50)
        assert not clk.timer_expired
        assert clk.cycles_until_deadline() == 50
        clk.advance_app(50)
        assert clk.timer_expired
        assert clk.cycles_until_deadline() == 0

    def test_deadline_must_be_future(self):
        clk = VirtualClock()
        clk.advance_app(10)
        with pytest.raises(SimulationError):
            clk.set_deadline(10)

    def test_clear(self):
        clk = VirtualClock()
        clk.set_deadline(100)
        clk.clear_deadline()
        assert clk.deadline is None
        assert not clk.timer_expired
        assert clk.cycles_until_deadline() is None
