"""Tests for the instrumentation plumbing helpers."""

import numpy as np

from repro.memory.objects import ObjectKind
from repro.sim.instrumentation import _RefPattern


class TestRefPattern:
    def test_touch_within_structure(self):
        pattern = _RefPattern(base=0x1000, size=256)
        addrs = pattern.touch([0, 100, 255, 300])
        assert addrs.dtype == np.uint64
        assert all(0x1000 <= a < 0x1100 for a in addrs)
        assert addrs[3] == 0x1000 + (300 % 256)

    def test_binary_search_path_halves(self):
        pattern = _RefPattern(base=0x1000, size=1024)  # 64 entries of 16B
        path = pattern.binary_search_path(key_hint=0xABCDEF, n_probes=6)
        assert 1 <= len(path) <= 6
        # First probe is the middle entry.
        assert path[0] == 0x1000 + (64 // 2) * 16

    def test_different_keys_touch_different_paths(self):
        pattern = _RefPattern(base=0x1000, size=4096)
        a = pattern.binary_search_path(0b101010, 8).tolist()
        b = pattern.binary_search_path(0b010101, 8).tolist()
        assert a != b

    def test_single_entry_structure(self):
        pattern = _RefPattern(base=0x1000, size=8)
        path = pattern.binary_search_path(5, 4)
        assert len(path) >= 1


class TestToolContext:
    def test_alloc_instr_kind(self, aspace):
        from repro.memory.allocator import HeapAllocator
        from repro.sim.instrumentation import ToolContext

        ctx = ToolContext(
            object_map=None,
            monitor=None,
            cost_model=None,
            address_space=aspace,
            cache=None,
            instr_allocator=HeapAllocator(aspace.instr),
        )
        obj = ctx.alloc_instr("counts", 4096)
        assert obj.kind is ObjectKind.INSTR
        assert obj.name == "counts"
        assert aspace.instr.contains(obj.base)
