"""Round-trip tests for trace save/load."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.sim.blocks import ReferenceBlock
from repro.sim.trace_io import load_trace, save_trace


class TestRoundTrip:
    def test_roundtrip(self, tmp_path):
        blocks = [
            ReferenceBlock(addrs=np.arange(100, dtype=np.uint64), cycles_per_ref=3.5,
                           label="warm", extra_cycles=9),
            ReferenceBlock(addrs=np.arange(5, dtype=np.uint64),
                           writes=np.array([True, False, True, False, True])),
        ]
        path = tmp_path / "trace.npz"
        save_trace(path, blocks)
        loaded = load_trace(path)
        assert len(loaded) == 2
        assert np.array_equal(loaded[0].addrs, blocks[0].addrs)
        assert loaded[0].cycles_per_ref == 3.5
        assert loaded[0].label == "warm"
        assert loaded[0].extra_cycles == 9
        assert loaded[0].writes is None
        assert np.array_equal(loaded[1].writes, blocks[1].writes)

    def test_empty_block_list(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_trace(path, [])
        assert load_trace(path) == []

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "nope.npz")

    def test_not_a_trace(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, junk=np.arange(3))
        with pytest.raises(TraceError):
            load_trace(path)
