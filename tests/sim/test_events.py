"""Tests for RunStats metrics (the figures' raw quantities)."""

import pytest

from repro.hpm.interrupts import InterruptKind, InterruptLog, InterruptRecord
from repro.sim.events import RunStats


def stats(**kw):
    base = dict(
        app_refs=1000,
        app_misses=100,
        instr_refs=10,
        instr_misses=2,
        app_cycles=10_000,
        instr_cycles=500,
    )
    base.update(kw)
    return RunStats(**base)


class TestRunStats:
    def test_totals(self):
        s = stats()
        assert s.total_cycles == 10_500
        assert s.total_misses == 102

    def test_slowdown(self):
        assert stats().slowdown == pytest.approx(0.05)
        assert RunStats().slowdown == 0.0

    def test_miss_rate_per_mcycle(self):
        s = stats(app_misses=250, app_cycles=1_000_000)
        assert s.miss_rate_per_mcycle == pytest.approx(250.0)
        assert RunStats().miss_rate_per_mcycle == 0.0

    def test_miss_increase_vs(self):
        base = stats(app_misses=100, instr_misses=0)
        instrumented = stats(app_misses=101, instr_misses=2)
        # (103 - 100) / 100
        assert instrumented.miss_increase_vs(base) == pytest.approx(0.03)

    def test_miss_increase_vs_empty_baseline(self):
        assert stats().miss_increase_vs(RunStats()) == 0.0

    def test_interrupts_per_gcycle(self):
        log = InterruptLog()
        for _ in range(3):
            log.append(
                InterruptRecord(
                    kind=InterruptKind.TIMER,
                    cycle=0,
                    handler_cycles=1,
                    delivery_cycles=1,
                )
            )
        s = stats(interrupts=log, app_cycles=1_000_000_000, instr_cycles=0)
        assert s.interrupts_per_gcycle() == pytest.approx(3.0)
