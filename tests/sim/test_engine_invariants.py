"""Property tests for engine invariants.

The central one: **chunk-size invariance**. The engine processes
references in chunks for vectorisation, but chunking is an
implementation detail — misses, cycles, attribution and interrupt
placement must be identical for any chunk size. A violation here means
interrupt points or cache state leak across chunk boundaries.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig
from repro.core.sampling import SamplingProfiler
from repro.core.search import NWaySearch
from repro.sim.engine import Simulator
from repro.workloads.synthetic import SyntheticStreams


def make_wl(seed=0):
    return SyntheticStreams(
        {"A": (256 * 1024, 55), "B": (256 * 1024, 45)},
        rounds=4,
        lines_per_round=3000,
        interleaved=True,
        seed=seed,
    )


def run_with_chunk(chunk_size, tool=None):
    sim = Simulator(CacheConfig(size=32 * 1024, assoc=4), seed=1, chunk_size=chunk_size)
    return sim.run(make_wl(seed=1), tool=tool)


class TestChunkInvariance:
    @pytest.mark.parametrize("chunk", [64, 1000, 7777, 1 << 16])
    def test_baseline_invariant(self, chunk):
        reference = run_with_chunk(1 << 15)
        other = run_with_chunk(chunk)
        assert other.stats.app_misses == reference.stats.app_misses
        assert other.stats.app_cycles == reference.stats.app_cycles
        assert other.actual.as_dict() == reference.actual.as_dict()

    @pytest.mark.parametrize("chunk", [128, 3001])
    def test_sampling_invariant(self, chunk):
        """Interrupt placement (and thus every sample) must not depend on
        chunking."""
        ref = run_with_chunk(1 << 15, tool=SamplingProfiler(period=211))
        other = run_with_chunk(chunk, tool=SamplingProfiler(period=211))
        assert other.measured.as_dict() == ref.measured.as_dict()
        assert len(other.stats.interrupts) == len(ref.stats.interrupts)
        assert other.stats.instr_cycles == ref.stats.instr_cycles

    @pytest.mark.parametrize("chunk", [512, 4099])
    def test_search_invariant(self, chunk):
        ref = run_with_chunk(1 << 15, tool=NWaySearch(n=4, interval_cycles=20_000))
        other = run_with_chunk(chunk, tool=NWaySearch(n=4, interval_cycles=20_000))
        assert other.measured.as_dict() == ref.measured.as_dict()

    @settings(max_examples=10, deadline=None)
    @given(st.integers(50, 5000))
    def test_property_baseline(self, chunk):
        reference = run_with_chunk(1 << 15)
        other = run_with_chunk(chunk)
        assert other.stats.app_misses == reference.stats.app_misses


class TestCacheModelAgnostic:
    def test_direct_mapped_engine_run(self):
        """The engine must drive the vectorised model (with its
        snapshot/replay budget path) identically well."""
        sim = Simulator(CacheConfig(size=32 * 1024, assoc=1), seed=1)
        res = sim.run(make_wl(seed=1), tool=SamplingProfiler(period=173))
        assert res.measured.rank_of("A") == 1
        total = res.stats.total_misses
        assert abs(res.tool.total_samples - total // 173) <= 2

    def test_hierarchy_engine_run(self):
        sim = Simulator(
            CacheConfig(size=64 * 1024, assoc=4),
            l1_config=CacheConfig(size=8 * 1024, assoc=2),
            seed=1,
        )
        res = sim.run(make_wl(seed=1), tool=SamplingProfiler(period=173))
        assert res.measured.rank_of("A") == 1

    def test_prefetch_engine_run(self):
        sim = Simulator(
            CacheConfig(size=32 * 1024, assoc=4), prefetch_next_line=True, seed=1
        )
        res = sim.run(make_wl(seed=1))
        plain = run_with_chunk(1 << 15)
        assert res.stats.app_misses < plain.stats.app_misses


class TestDeterminismAcrossModels:
    def test_dm_vs_assoc1_loop_same_attribution(self):
        """Engine + DirectMapped must equal engine + SetAssociative(1)."""
        from repro.cache.set_assoc import SetAssociativeCache
        from repro.cache.direct_mapped import DirectMappedCache
        from repro.cache.attribution import GroundTruth

        cfg = CacheConfig(size=32 * 1024, assoc=1)
        results = []
        for model_cls in (DirectMappedCache, SetAssociativeCache):
            wl = make_wl(seed=2)
            wl.prepare()
            cache = model_cls(cfg)
            gt = GroundTruth(wl.object_map)
            for block in wl.blocks():
                res = cache.access(block.addrs)
                gt.observe(block.addrs[res.miss_mask])
            results.append(gt.profile().as_dict())
        assert results[0] == results[1]
