"""Session-layer contracts for mechanism-decorated cache stacks.

Snapshot/resume must round-trip a *mid-run* decorated stack
bit-identically (since v2 the payload pickles the component stack
whole; v3 added kernel RNG draw counts), and ``finalize`` must surface
the frozen per-component ledgers on the RunResult.
"""

import pickle

import pytest

from repro.cache import CacheConfig
from repro.core.sampling import SamplingProfiler
from repro.sim.engine import Simulator
from repro.sim.session import SNAPSHOT_VERSION, SimulationSession
from repro.workloads.synthetic import SyntheticStreams

pytestmark = pytest.mark.mechanisms

CFG = CacheConfig(size=64 * 1024, assoc=2, mechanisms="vc+sb")


def make_workload(seed=3):
    return SyntheticStreams(
        {"A": (256 * 1024, 60), "B": (256 * 1024, 40)},
        rounds=4,
        lines_per_round=4000,
        seed=seed,
    )


def fingerprint(result):
    stats = result.cache_stats
    return (
        result.stats.app_refs,
        result.stats.app_misses,
        result.stats.app_cycles,
        result.stats.instr_refs,
        (stats.accesses, stats.misses, tuple(sorted(stats.mechanism.items()))),
        [
            (name, s.accesses, s.misses, tuple(sorted(s.mechanism.items())))
            for name, s in result.component_stats
        ],
        None
        if result.measured is None
        else [(s.name, s.count) for s in result.measured.shares],
    )


def test_snapshot_version_bumped_for_draw_accounting():
    # v3 added RNG draw accounting; v4 added the multi-core `cores` entry.
    assert SNAPSHOT_VERSION == 4


def test_decorated_restore_bit_identical():
    sim = Simulator(CFG, seed=5)
    base = sim.run(make_workload(), tool=SamplingProfiler(period=701))

    session = sim.start_session(
        make_workload(), tool=SamplingProfiler(period=701)
    )
    for _ in range(3):
        session.step()
    snapshot = pickle.loads(pickle.dumps(session.snapshot()))
    restored = SimulationSession.restore(snapshot, make_workload())
    while restored.step():
        pass
    assert fingerprint(restored.finalize()) == fingerprint(base)


def test_component_stats_on_result():
    result = Simulator(CFG, seed=5).run(make_workload())
    labels = [name for name, _ in result.component_stats]
    assert labels == ["sb", "vc", "cache"]
    outer = result.component_stats[0][1]
    assert result.cache_stats.misses == outer.misses
    assert "sb_prefetches" in result.cache_stats.mechanism
    # Frozen at stream end: later cache activity must not alias in.
    assert result.cache_stats.accesses == result.stats.app_refs + (
        result.stats.instr_refs
    )


def test_undecorated_component_stats_single_ledger():
    result = Simulator(CacheConfig(size=64 * 1024, assoc=2), seed=5).run(
        make_workload()
    )
    assert [name for name, _ in result.component_stats] == ["cache"]
    assert result.cache_stats.mechanism == {}
