"""Streaming observer tests: live metrics without perturbing the run."""

import pytest

from repro.cache import CacheConfig
from repro.core.sampling import SamplingProfiler
from repro.hpm.interrupts import InterruptKind
from repro.sim.engine import Simulator
from repro.sim.observers import (
    ChunkEvent,
    InterruptEvent,
    InterruptRateObserver,
    MissRateObserver,
    ProgressObserver,
    SessionObserver,
    ToolCycleShareObserver,
)
from repro.workloads.synthetic import SyntheticStreams

CFG = CacheConfig(size=64 * 1024, assoc=2)


def make_workload():
    return SyntheticStreams(
        {"A": (256 * 1024, 60), "B": (256 * 1024, 40)},
        rounds=4,
        lines_per_round=4000,
        seed=3,
    )


def run_with(observers, tool=None):
    session = Simulator(CFG, seed=5).start_session(
        make_workload(), tool=tool, observers=observers
    )
    while session.step():
        pass
    return session.finalize()


class Recorder(SessionObserver):
    def __init__(self):
        self.attached = 0
        self.finalized = 0
        self.chunks = []
        self.interrupts = []

    def on_attach(self, session):
        self.attached += 1

    def on_chunk(self, event):
        self.chunks.append(event)

    def on_interrupt(self, event):
        self.interrupts.append(event)

    def on_finalize(self, session):
        self.finalized += 1


class TestObserverHooks:
    def test_lifecycle_hooks_fire(self):
        rec = Recorder()
        result = run_with([rec], tool=SamplingProfiler(period=701))
        assert rec.attached == 1
        assert rec.finalized == 1
        assert len(rec.chunks) > 0
        assert len(rec.interrupts) == len(result.stats.interrupts)

    def test_chunk_events_cover_all_refs(self):
        rec = Recorder()
        result = run_with([rec])
        assert sum(e.app_refs for e in rec.chunks) == result.stats.app_refs
        assert sum(e.n_misses for e in rec.chunks) == result.stats.app_misses
        assert rec.chunks[-1].total_app_refs == result.stats.app_refs
        # Cumulative count is monotone and cycle never goes backwards.
        totals = [e.total_app_refs for e in rec.chunks]
        cycles = [e.cycle for e in rec.chunks]
        assert totals == sorted(totals)
        assert cycles == sorted(cycles)

    def test_interrupt_events_match_records(self):
        rec = Recorder()
        result = run_with([rec], tool=SamplingProfiler(period=701))
        got = [(e.cycle, e.kind, e.tool, e.handler_cycles) for e in rec.interrupts]
        want = [
            (r.cycle, r.kind, r.tool, r.handler_cycles)
            for r in result.stats.interrupts.records
        ]
        assert got == want

    def test_observers_do_not_perturb_run(self):
        """Observers live outside the machine: zero virtual cycles."""
        plain = run_with([], tool=SamplingProfiler(period=701))
        observed = run_with(
            [Recorder(), MissRateObserver(10_000), InterruptRateObserver()],
            tool=SamplingProfiler(period=701),
        )
        assert plain.stats.app_cycles == observed.stats.app_cycles
        assert plain.stats.instr_cycles == observed.stats.instr_cycles
        assert plain.stats.app_misses == observed.stats.app_misses


class TestMissRateObserver:
    def test_rates_and_totals(self):
        obs = MissRateObserver(bucket_cycles=10_000)
        result = run_with([obs])
        assert obs.total_refs == result.stats.app_refs
        assert obs.total_misses == result.stats.app_misses
        rates = obs.rates()
        assert len(rates) > 1
        assert all(0.0 <= rate <= 1.0 for _, rate in rates)
        assert [b for b, _ in rates] == sorted(b for b, _ in rates)

    def test_bad_bucket(self):
        with pytest.raises(ValueError):
            MissRateObserver(bucket_cycles=0)


class TestInterruptRateObserver:
    def test_counts_by_kind(self):
        obs = InterruptRateObserver()
        result = run_with([obs], tool=SamplingProfiler(period=701))
        assert obs.total == len(result.stats.interrupts)
        assert obs.n_by_kind[InterruptKind.MISS_OVERFLOW] == obs.total
        assert (
            obs.cycles_by_kind[InterruptKind.MISS_OVERFLOW]
            == result.stats.instr_cycles
        )
        assert obs.per_gcycle() > 0.0

    def test_empty_rate(self):
        obs = InterruptRateObserver()
        run_with([obs])  # uninstrumented: no interrupts
        assert obs.total == 0
        assert obs.per_gcycle() == 0.0


class TestToolCycleShareObserver:
    def test_single_tool_full_share(self):
        obs = ToolCycleShareObserver()
        run_with([obs], tool=SamplingProfiler(period=701))
        assert obs.shares() == {"sampling": 1.0}

    def test_manual_events_split_share(self):
        obs = ToolCycleShareObserver()
        obs.on_interrupt(
            InterruptEvent(10, InterruptKind.MISS_OVERFLOW, "a", 300, 100)
        )
        obs.on_interrupt(InterruptEvent(20, InterruptKind.TIMER, "b", 100, 100))
        obs.on_interrupt(InterruptEvent(30, InterruptKind.TIMER, "b", 100, 100))
        shares = obs.shares()
        assert shares == {"a": 0.5, "b": 0.5}
        assert obs.interrupts_by_tool == {"a": 1, "b": 2}


class TestProgressObserver:
    def test_callback_cadence(self):
        reports = []
        obs = ProgressObserver(
            every_refs=4000, on_progress=lambda refs, cycle: reports.append(refs)
        )
        result = run_with([obs], tool=SamplingProfiler(period=701))
        assert obs.app_refs == result.stats.app_refs
        assert obs.interrupts == len(result.stats.interrupts)
        assert len(reports) >= 2
        # Reports are at least every_refs apart.
        assert all(b - a >= 4000 for a, b in zip(reports, reports[1:]))

    def test_bad_cadence(self):
        with pytest.raises(ValueError):
            ProgressObserver(every_refs=0)


class TestChunkEventShape:
    def test_frozen(self):
        import numpy as np

        event = ChunkEvent(1, 2, 3, np.array([], dtype=np.uint64), "x", 2)
        with pytest.raises(AttributeError):
            event.cycle = 5
