"""Tests for profile comparison metrics and tables."""

import pytest

from repro.core.profile import DataProfile, ObjectShare
from repro.core.report import (
    comparison_table,
    max_share_error,
    rank_agreement,
    spearman_rank_correlation,
)


def profile(source, **shares):
    total = 1000
    return DataProfile(
        source=source,
        shares=[
            ObjectShare(name=k, count=int(v * total), share=v) for k, v in shares.items()
        ],
        total_misses=total,
    )


ACTUAL = profile("actual", a=0.5, b=0.3, c=0.15, d=0.05)


class TestRankAgreement:
    def test_perfect(self):
        measured = profile("m", a=0.52, b=0.28, c=0.16, d=0.04)
        assert rank_agreement(ACTUAL, measured, k=4) == 1.0

    def test_near_tie_swap_forgiven(self):
        actual = profile("actual", x=0.40, y=0.395, z=0.205)
        measured = profile("m", y=0.41, x=0.39, z=0.2)  # x/y swapped
        assert rank_agreement(actual, measured, k=3) == 1.0

    def test_big_swap_penalised(self):
        measured = profile("m", d=0.5, b=0.3, c=0.15, a=0.05)  # a <-> d
        assert rank_agreement(ACTUAL, measured, k=4) < 1.0

    def test_subset_judged_on_reported(self):
        # The search reports only its found objects; order among them counts.
        measured = profile("m", a=0.5, b=0.3)
        assert rank_agreement(ACTUAL, measured, k=4) == 1.0

    def test_nothing_reported(self):
        measured = profile("m", zz=1.0)
        assert rank_agreement(ACTUAL, measured, k=4) == 0.0

    def test_empty_actual(self):
        assert rank_agreement(profile("a"), profile("m"), k=4) == 1.0


class TestMaxShareError:
    def test_zero_when_identical(self):
        assert max_share_error(ACTUAL, ACTUAL) == 0.0

    def test_reports_worst(self):
        measured = profile("m", a=0.35, b=0.3, c=0.15, d=0.05)
        assert max_share_error(ACTUAL, measured) == pytest.approx(0.15)

    def test_ignores_unreported(self):
        measured = profile("m", a=0.5)
        assert max_share_error(ACTUAL, measured) == 0.0


class TestSpearman:
    def test_identical_order(self):
        measured = profile("m", a=0.9, b=0.05, c=0.03, d=0.02)
        assert spearman_rank_correlation(ACTUAL, measured) == 1.0

    def test_reversed_order(self):
        measured = profile("m", d=0.5, c=0.3, b=0.15, a=0.05)
        assert spearman_rank_correlation(ACTUAL, measured) == -1.0

    def test_too_few_comparable(self):
        measured = profile("m", a=1.0)
        assert spearman_rank_correlation(ACTUAL, measured) == 1.0


class TestComparisonTable:
    def test_renders_all_sources(self):
        sample = profile("sample", a=0.52, b=0.28, c=0.16, d=0.04)
        search = profile("search", a=0.49, b=0.31)
        out = comparison_table(ACTUAL, [sample, search], title="T")
        assert "sample rank" in out
        assert "search rank" in out
        assert "a" in out

    def test_includes_technique_only_objects(self):
        sample = profile("sample", a=0.5, ghost=0.5)
        out = comparison_table(ACTUAL, [sample], k=2)
        assert "ghost" in out

    def test_dash_for_missing(self):
        search = profile("search", a=0.5)
        out = comparison_table(ACTUAL, [search], k=3)
        assert "-" in out
