"""Tests for time-resolved sampling (the measured side of Figure 5).

Section 3.5: phases "would not be expected to affect sampling unless the
phases are synchronized with the sample frequency, or short enough to
most often fall in between samples". These tests pin both halves: the
whole-run sampled shares stay accurate under applu's phases, and the
per-bucket sample timeline reveals the phases themselves.
"""

import pytest

from repro.analysis.phases import detect_phases, phase_profiles_differ
from repro.cache import CacheConfig
from repro.core.sampling import SamplingProfiler
from repro.sim.engine import Simulator
from repro.workloads.applu import Applu


@pytest.fixture(scope="module")
def applu_sampled():
    sim = Simulator(CacheConfig(size=256 * 1024, assoc=4), seed=21)
    base = sim.run(Applu(seed=21, n_iterations=7, jacobian_lines=4500))
    bucket = max(1, base.stats.app_cycles // 40)
    period = max(8, base.stats.app_misses // 2500)
    tool = SamplingProfiler(
        period=period, schedule="prime", timeline_bucket_cycles=bucket
    )
    res = sim.run(
        Applu(seed=21, n_iterations=7, jacobian_lines=4500), tool=tool
    )
    return res, tool


class TestTimeline:
    def test_disabled_by_default(self):
        assert SamplingProfiler(period=100).timeline is None

    def test_timeline_total_matches_samples(self, applu_sampled):
        res, tool = applu_sampled
        timeline_total = sum(
            int(tool.timeline.series_for(name).sum())
            for name in tool.timeline.names()
        )
        assert timeline_total == tool.total_samples

    def test_phases_visible_in_sampled_timeline(self, applu_sampled):
        """The measured timeline must expose applu's phases without any
        access to ground truth."""
        _res, tool = applu_sampled
        phases = detect_phases(tool.timeline, threshold=0.8)
        assert len(phases) >= 3
        assert phase_profiles_differ(phases)

    def test_abc_dip_in_sampled_buckets(self, applu_sampled):
        _res, tool = applu_sampled
        a = tool.timeline.series_for("a")
        rsd = tool.timeline.series_for("rsd")
        n = min(len(a), len(rsd))
        dips = sum(1 for i in range(n) if a[i] == 0 and rsd[i] > 0)
        assert dips >= 2

    def test_whole_run_shares_unaffected_by_phases(self, applu_sampled):
        """The paper's claim: phases do not distort *overall* sampling
        accuracy (prime period, unsynchronised)."""
        res, _tool = applu_sampled
        for name in ("a", "b", "c", "d", "rsd"):
            assert res.measured.share_of(name) == pytest.approx(
                res.actual.share_of(name), abs=0.02
            ), name
