"""Tests for DataProfile result types."""

from repro.core.profile import DataProfile, ObjectShare


def make_profile():
    return DataProfile(
        source="test",
        shares=[
            ObjectShare(name="small", count=1, share=0.01),
            ObjectShare(name="big", count=90, share=0.9),
            ObjectShare(name="tiny", count=0, share=0.00001),
            ObjectShare(name="mid", count=9, share=0.09),
        ],
        total_misses=100,
    )


class TestDataProfile:
    def test_sorted_on_construction(self):
        prof = make_profile()
        assert prof.names() == ["big", "mid", "small", "tiny"]

    def test_rank_of(self):
        prof = make_profile()
        assert prof.rank_of("big") == 1
        assert prof.rank_of("mid") == 2
        assert prof.rank_of("ghost") is None

    def test_share_of(self):
        prof = make_profile()
        assert prof.share_of("mid") == 0.09
        assert prof.share_of("ghost") == 0.0

    def test_top_excludes_below_threshold(self):
        """Objects under 0.01% are excluded, as in the paper's tables."""
        prof = make_profile()
        top = prof.top(10)
        assert [s.name for s in top] == ["big", "mid", "small"]

    def test_top_k_limits(self):
        prof = make_profile()
        assert len(prof.top(2)) == 2

    def test_deterministic_tie_order(self):
        prof = DataProfile(
            source="t",
            shares=[
                ObjectShare(name="zeta", count=1, share=0.5),
                ObjectShare(name="alpha", count=1, share=0.5),
            ],
        )
        assert prof.names() == ["alpha", "zeta"]

    def test_table_renders(self):
        out = make_profile().table()
        assert "big" in out
        assert "90.0" in out

    def test_as_dict(self):
        assert make_profile().as_dict()["big"] == 0.9

    def test_pct(self):
        assert ObjectShare(name="x", count=1, share=0.225).pct == 22.5

    def test_len(self):
        assert len(make_profile()) == 4
