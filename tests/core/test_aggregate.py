"""Tests for heap/stack aggregation (future work, section 5)."""

from repro.core.aggregate import aggregate_by, aggregate_heap_by_site
from repro.core.profile import DataProfile, ObjectShare
from repro.memory.objects import MemoryObject, ObjectKind


def heap_share(name, share, site, base=0x1000, size=64):
    obj = MemoryObject(name, base=base, size=size, kind=ObjectKind.HEAP, alloc_site=site)
    return ObjectShare(name=name, count=int(share * 1000), share=share, obj=obj)


class TestAggregateBySite:
    def test_blocks_fold_by_site(self):
        prof = DataProfile(
            source="sample",
            shares=[
                heap_share("0x1000", 0.3, "make_node", base=0x1000),
                heap_share("0x2000", 0.25, "make_node", base=0x2000),
                heap_share("0x3000", 0.2, "make_leaf", base=0x3000),
                ObjectShare(name="global_arr", count=250, share=0.25),
            ],
            total_misses=1000,
        )
        agg = aggregate_heap_by_site(prof)
        assert agg.share_of("heap@make_node") == 0.55
        assert agg.share_of("heap@make_leaf") == 0.2
        assert agg.share_of("global_arr") == 0.25
        assert agg.rank_of("heap@make_node") == 1

    def test_counts_add(self):
        prof = DataProfile(
            source="s",
            shares=[
                heap_share("0x1000", 0.5, "site", base=0x1000),
                heap_share("0x2000", 0.5, "site", base=0x2000),
            ],
        )
        agg = aggregate_heap_by_site(prof)
        assert agg.shares[0].count == 1000

    def test_siteless_heap_passes_through(self):
        obj = MemoryObject("0x9000", base=0x9000, size=64, kind=ObjectKind.HEAP)
        prof = DataProfile(
            source="s", shares=[ObjectShare(name="0x9000", count=1, share=1.0, obj=obj)]
        )
        agg = aggregate_heap_by_site(prof)
        assert agg.share_of("0x9000") == 1.0

    def test_meta_flag(self):
        agg = aggregate_heap_by_site(DataProfile(source="s"))
        assert agg.meta["aggregated"] is True
        assert "aggregated" in agg.source


class TestAggregateBy:
    def test_custom_key(self):
        prof = DataProfile(
            source="s",
            shares=[
                ObjectShare(name="fib:n", count=3, share=0.3),
                ObjectShare(name="fib:tmp", count=2, share=0.2),
                ObjectShare(name="main:buf", count=5, share=0.5),
            ],
        )
        agg = aggregate_by(prof, key=lambda s: s.name.split(":")[0])
        assert agg.share_of("fib") == 0.5
        assert agg.share_of("main") == 0.5

    def test_representative_is_largest_member(self):
        big = MemoryObject("big", base=0x100, size=64)
        prof = DataProfile(
            source="s",
            shares=[
                ObjectShare(name="x1", count=1, share=0.1),
                ObjectShare(name="x2", count=9, share=0.9, obj=big),
            ],
        )
        agg = aggregate_by(prof, key=lambda s: "x")
        assert agg.shares[0].obj is big
