"""Tests for the n-way search tool."""

import pytest

from repro.cache import CacheConfig
from repro.core.greedy_search import GreedySearch
from repro.core.search import NWaySearch, SearchPhase
from repro.errors import SearchError
from repro.sim.engine import Simulator
from repro.workloads.synthetic import FigureTwoLayout, SyntheticStreams

SPEC = {"A": (512 * 1024, 55), "B": (512 * 1024, 30), "C": (512 * 1024, 15)}


def run_search(n=10, rounds=40, spec=None, sim_kwargs=None, **search_kwargs):
    sim = Simulator(CacheConfig(size=64 * 1024), seed=3, **(sim_kwargs or {}))
    wl = SyntheticStreams(
        spec or SPEC, rounds=rounds, lines_per_round=6000, interleaved=True, seed=3
    )
    search_kwargs.setdefault("interval_cycles", 30_000)
    tool = NWaySearch(n=n, **search_kwargs)
    return sim.run(wl, tool=tool), tool


class TestValidation:
    def test_n_too_small(self):
        with pytest.raises(SearchError):
            NWaySearch(n=1)

    def test_bad_interval(self):
        with pytest.raises(SearchError):
            NWaySearch(interval_cycles=0)

    def test_n_exceeds_bank(self):
        sim = Simulator(CacheConfig(size=64 * 1024), n_region_counters=4)
        wl = SyntheticStreams(SPEC, rounds=2)
        with pytest.raises(SearchError):
            sim.run(wl, tool=NWaySearch(n=10, interval_cycles=10_000))


class TestTenWay:
    def test_finds_all_objects_ranked(self):
        res, tool = run_search(n=10)
        prof = res.measured
        assert prof.rank_of("A") == 1
        assert prof.rank_of("B") == 2
        assert prof.rank_of("C") == 3
        assert tool.phase is SearchPhase.DONE

    def test_estimates_close_to_actual(self):
        res, _ = run_search(n=10)
        for name in SPEC:
            assert abs(res.measured.share_of(name) - res.actual.share_of(name)) < 0.06

    def test_metadata(self):
        res, tool = run_search(n=10)
        meta = res.measured.meta
        assert meta["n"] == 10
        assert meta["estimated"] is True
        assert meta["iterations"] == tool.iterations > 0

    def test_single_object_regions_averaged(self):
        res, tool = run_search(n=10)
        # Found objects should have been search-measured multiple times
        # (re-measure-and-average, paper section 2.2).
        assert any(n_meas > 1 for _, _, _, _, n_meas in tool.results)

    def test_returns_at_most_n_minus_1(self):
        many = {f"v{i}": (256 * 1024, 5 + i) for i in range(14)}
        res, _ = run_search(n=10, spec=many, rounds=60)
        assert len(res.measured) <= 9


class TestTwoWay:
    def test_finds_top_object_only(self):
        res, _ = run_search(n=2, rounds=60)
        names = res.measured.names()
        assert 1 <= len(names) <= 2  # "expected to identify only the top one or two"
        assert "A" in names


class TestGreedyVsPriorityQueue:
    def _run_fig2(self, tool_cls):
        sim = Simulator(CacheConfig(size=64 * 1024), seed=4)
        wl = FigureTwoLayout(seed=4, rounds=80, lines_per_round=6000)
        tool = tool_cls(n=2, interval_cycles=60_000)
        return sim.run(wl, tool=tool)

    def test_priority_queue_finds_hottest(self):
        res = self._run_fig2(NWaySearch)
        assert res.measured.names()[0] == "E"

    def test_greedy_misses_hottest(self):
        """Figure 2: without backtracking the search terminates inside the
        region whose aggregate (not single-object) misses dominate."""
        res = self._run_fig2(GreedySearch)
        names = res.measured.names()
        assert "E" not in names
        assert names  # it does find something (C in the paper's diagram)

    def test_greedy_flag(self):
        tool = GreedySearch(n=2)
        assert tool.backtracking is False
        assert "greedy" in tool.profile().source


class TestPhaseHandling:
    def _phased_workload(self):
        """Two arrays alternating strict phases."""
        from repro.workloads.base import Workload
        from repro.workloads.patterns import stream_lines

        class Phased(Workload):
            name = "phased"
            cycles_per_ref = 4.0

            def _declare(self):
                self.symbols.declare("hot_even", 512 * 1024)
                self.symbols.declare("hot_odd", 512 * 1024)

            def _generate(self):
                cur = {"hot_even": 0, "hot_odd": 0}
                for phase in range(24):
                    name = "hot_even" if phase % 2 == 0 else "hot_odd"
                    addrs = stream_lines(self.symbols[name], 4000, 64, cur[name])
                    cur[name] += 4000
                    yield self.block(addrs, label=name)

        return Phased()

    def test_zero_keep_survives_phases(self):
        sim = Simulator(CacheConfig(size=64 * 1024), seed=5)
        tool = NWaySearch(n=4, interval_cycles=20_000, zero_keep_max=4)
        res = sim.run(self._phased_workload(), tool=tool)
        names = res.measured.names()
        assert "hot_even" in names and "hot_odd" in names

    def test_interval_grows_on_zero_keep(self):
        """With an interval much shorter than a phase, protected regions
        go quiet and each retention stretches the interval."""
        sim = Simulator(CacheConfig(size=64 * 1024), seed=5)
        tool = NWaySearch(n=4, interval_cycles=4_000, zero_keep_max=4)
        sim.run(self._phased_workload(), tool=tool)
        assert tool.interval_cycles > tool.initial_interval_cycles

    def test_restart_on_total_loss(self):
        """With the heuristic disabled, strict phases can empty the queue;
        the search must restart rather than stall."""
        sim = Simulator(CacheConfig(size=64 * 1024), seed=5)
        tool = NWaySearch(n=2, interval_cycles=8_000, zero_keep_max=0)
        res = sim.run(self._phased_workload(), tool=tool)
        assert tool.restarts >= 0  # must complete without error
        assert res.stats.app_refs > 0


class TestRunEndMidSearch:
    def test_partial_results_on_stream_end(self):
        """A stream too short for convergence still yields found singles."""
        res, tool = run_search(n=10, rounds=3, interval_cycles=15_000)
        prof = res.measured
        if tool.phase is SearchPhase.SEARCHING:
            assert prof.meta["estimated"] is False
        # Must not crash, and any reported shares are in [0, 1].
        for share in prof.shares:
            assert 0.0 <= share.share <= 1.0
