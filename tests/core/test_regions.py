"""Tests for region construction and object-aligned splitting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regions import RegionState, initial_regions, region_for, split_region
from repro.errors import SearchError
from repro.memory.object_map import ObjectMap
from repro.memory.objects import MemoryObject
from repro.util.intervals import Interval


def build_map(layout):
    """layout: list of (name, base, size) globals."""
    omap = ObjectMap()
    for name, base, size in layout:
        omap.add_global(MemoryObject(name, base=base, size=size))
    return omap


STD = [
    ("a", 0x1000, 0x1000),
    ("b", 0x3000, 0x1000),
    ("c", 0x5000, 0x2000),
    ("d", 0x8000, 0x1000),
]


class TestRegionFor:
    def test_empty_interval_is_none(self):
        omap = build_map(STD)
        assert region_for(omap, Interval(0x100, 0x900)) is None

    def test_single_object_clips_to_extent(self):
        omap = build_map(STD)
        region = region_for(omap, Interval(0x0, 0x2800))
        assert region.single_object
        assert region.obj.name == "a"
        assert region.interval == Interval(0x1000, 0x2000)

    def test_multi_object(self):
        omap = build_map(STD)
        region = region_for(omap, Interval(0x0, 0x9000))
        assert region.n_objects == 4
        assert not region.single_object

    def test_partial_overlap_counts(self):
        omap = build_map(STD)
        region = region_for(omap, Interval(0x3800, 0x5800))  # tail of b, head of c
        assert region.n_objects == 2


class TestSplit:
    def test_split_never_cuts_objects(self):
        omap = build_map(STD)
        region = region_for(omap, Interval(0x0, 0x9000))
        children = split_region(omap, region)
        assert len(children) == 2
        for child in children:
            for obj in omap.all_objects():
                inside = (
                    obj.base >= child.interval.lo and obj.end <= child.interval.hi
                )
                outside = (
                    obj.end <= child.interval.lo or obj.base >= child.interval.hi
                )
                assert inside or outside, f"{obj.name} spans {child.interval}"

    def test_split_children_cover_all_objects(self):
        omap = build_map(STD)
        region = region_for(omap, Interval(0x0, 0x9000))
        children = split_region(omap, region)
        names = set()
        for child in children:
            names.update(o.name for o in omap.objects_overlapping(child.interval))
        assert names == {"a", "b", "c", "d"}

    def test_split_single_object_rejected(self):
        omap = build_map(STD)
        region = region_for(omap, Interval(0x1000, 0x2000))
        with pytest.raises(SearchError):
            split_region(omap, region)

    def test_split_inherits_was_top(self):
        omap = build_map(STD)
        region = region_for(omap, Interval(0x0, 0x9000))
        region.was_top = True
        children = split_region(omap, region)
        assert all(c.was_top for c in children)

    def test_unaligned_split_cuts_midpoint(self):
        omap = build_map([("wide", 0x1000, 0x8000)] + [("tail", 0xA000, 0x1000)])
        region = region_for(omap, Interval(0x1000, 0xB000))
        children = split_region(omap, region, aligned=False)
        # Midpoint 0x6000 cuts through "wide": both children see part of it.
        names = [
            [o.name for o in omap.objects_overlapping(c.interval)] for c in children
        ]
        assert "wide" in names[0] and "wide" in names[1]

    def test_aligned_split_respects_wide_object(self):
        omap = build_map([("wide", 0x1000, 0x8000), ("tail", 0xA000, 0x1000)])
        region = region_for(omap, Interval(0x1000, 0xB000))
        children = split_region(omap, region, aligned=True)
        for child in children:
            wide_in = [o for o in omap.objects_overlapping(child.interval)
                       if o.name == "wide"]
            if wide_in:
                assert child.interval.lo <= 0x1000 or child.interval.lo >= 0x9000 or \
                    (child.interval.lo <= 0x1000 and child.interval.hi >= 0x9000)


class TestInitialRegions:
    def test_covers_all_objects(self):
        omap = build_map(STD)
        regions = initial_regions(omap, Interval(0x0, 0x10000), 4)
        names = set()
        for region in regions:
            names.update(o.name for o in omap.objects_overlapping(region.interval))
        assert names == {"a", "b", "c", "d"}

    def test_regions_disjoint(self):
        omap = build_map(STD)
        regions = initial_regions(omap, Interval(0x0, 0x10000), 4)
        ordered = sorted(regions, key=lambda r: r.interval.lo)
        for a, b in zip(ordered, ordered[1:]):
            assert a.interval.hi <= b.interval.lo

    def test_requires_two_way(self):
        omap = build_map(STD)
        with pytest.raises(SearchError):
            initial_regions(omap, Interval(0, 0x10000), 1)

    def test_empty_space_rejected(self):
        omap = build_map(STD)
        with pytest.raises(SearchError):
            initial_regions(omap, Interval(0x20000, 0x30000), 4)


class TestRegionState:
    def test_mean_share(self):
        region = RegionState(interval=Interval(0, 10), n_objects=2)
        assert region.mean_share == 0.0
        region.record_share(0.4)
        region.record_share(0.2)
        assert region.mean_share == pytest.approx(0.3)
        assert region.n_measurements == 2

    def test_record_resets_zero_streak(self):
        region = RegionState(interval=Interval(0, 10), n_objects=2)
        region.zero_streak = 2
        region.record_share(0.1)
        assert region.zero_streak == 0

    def test_identity_hashing(self):
        a = RegionState(interval=Interval(0, 10), n_objects=1)
        b = RegionState(interval=Interval(0, 10), n_objects=1)
        assert a != b
        assert len({a, b}) == 2


@st.composite
def object_layouts(draw):
    """Random non-overlapping layouts."""
    n = draw(st.integers(2, 12))
    cursor = 0x1000
    layout = []
    for i in range(n):
        gap = draw(st.integers(0, 0x2000))
        size = draw(st.integers(0x100, 0x4000))
        cursor += gap
        layout.append((f"v{i}", cursor, size))
        cursor += size
    return layout


class TestSplitProperties:
    @settings(max_examples=50, deadline=None)
    @given(object_layouts())
    def test_recursive_splitting_terminates_at_singles(self, layout):
        """Repeated aligned splitting must reach single-object regions
        without ever cutting an object, losing one, or looping forever."""
        omap = build_map(layout)
        whole = Interval(0x0, layout[-1][1] + layout[-1][2] + 0x1000)
        work = [region_for(omap, whole)]
        singles = []
        steps = 0
        while work:
            steps += 1
            assert steps < 300, "splitting did not terminate"
            region = work.pop()
            if region.single_object:
                singles.append(region)
                continue
            children = split_region(omap, region)
            assert children, "split lost every child"
            work.extend(children)
        found = {r.obj.name for r in singles}
        assert found == {name for name, _, _ in layout}
