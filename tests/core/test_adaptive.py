"""Tests for the adaptive sampling profiler (future work, section 5)."""

import pytest

from repro.cache import CacheConfig
from repro.core.adaptive import AdaptiveSamplingProfiler
from repro.errors import CounterError
from repro.sim.engine import Simulator
from repro.workloads.synthetic import SyntheticStreams


def run_adaptive(initial_period, target=0.01, rounds=30, **kw):
    sim = Simulator(CacheConfig(size=64 * 1024), seed=6)
    wl = SyntheticStreams(
        {"A": (512 * 1024, 70), "B": (512 * 1024, 30)},
        rounds=rounds,
        lines_per_round=8000,
        interleaved=True,
        seed=6,
    )
    tool = AdaptiveSamplingProfiler(
        initial_period=initial_period, target_overhead=target, seed=6, **kw
    )
    return sim.run(wl, tool=tool), tool


class TestValidation:
    def test_bad_target(self):
        with pytest.raises(CounterError):
            AdaptiveSamplingProfiler(initial_period=100, target_overhead=0)
        with pytest.raises(CounterError):
            AdaptiveSamplingProfiler(initial_period=100, target_overhead=1.5)

    def test_bad_adjust_every(self):
        with pytest.raises(CounterError):
            AdaptiveSamplingProfiler(initial_period=100, adjust_every=0)


class TestAdaptation:
    def test_too_frequent_sampling_backs_off(self):
        """Starting with an absurdly small period, the tool must raise it."""
        res, tool = run_adaptive(initial_period=8, target=0.01)
        assert tool.base_period > 8
        assert len(tool.period_history) > 1

    def test_overhead_driven_toward_target(self):
        res, tool = run_adaptive(initial_period=8, target=0.02)
        # Unadapted, period 8 on this all-miss workload would cost
        # ~9,000/(8*4) = 280x slowdown; adaptation must crush that.
        assert res.stats.slowdown < 2.0
        assert tool.base_period > 1000

    def test_generous_budget_lowers_period(self):
        """With a huge starting period and a generous target, the tool
        shrinks the period to collect more samples."""
        # On this all-miss workload overhead(p) ~= 9,000/(4p): period
        # 20,000 costs ~11%, far under half the (deliberately lavish)
        # 80% target, so the tool must shrink the period.
        res, tool = run_adaptive(
            initial_period=20_000, target=0.80, adjust_every=4, min_period=64
        )
        assert tool.base_period < 20_000

    def test_period_respects_floor(self):
        res, tool = run_adaptive(
            initial_period=128, target=0.99, adjust_every=2, min_period=100
        )
        assert tool.base_period >= 100

    def test_profile_metadata(self):
        res, tool = run_adaptive(initial_period=8)
        meta = res.measured.meta
        assert meta["final_period"] == tool.base_period
        assert meta["period_history"] == tool.period_history
        assert meta["target_overhead"] == 0.01

    def test_still_ranks_correctly(self):
        res, _ = run_adaptive(initial_period=64, target=0.05)
        assert res.measured.rank_of("A") == 1
        assert res.measured.rank_of("B") == 2
