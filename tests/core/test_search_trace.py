"""Tests for search iteration tracing and the convergence renderer."""

import pytest

from repro.cache import CacheConfig
from repro.core.search import NWaySearch, SearchPhase
from repro.core.search_trace import (
    IterationRecord,
    MeasuredRegion,
    render_trace,
    trace_summary,
)
from repro.sim.engine import Simulator
from repro.util.intervals import Interval
from repro.workloads.synthetic import SyntheticStreams


@pytest.fixture(scope="module")
def traced_tool():
    sim = Simulator(CacheConfig(size=64 * 1024), seed=3)
    wl = SyntheticStreams(
        {"A": (512 * 1024, 55), "B": (512 * 1024, 30), "C": (512 * 1024, 15)},
        rounds=40,
        lines_per_round=6000,
        interleaved=True,
        seed=3,
    )
    tool = NWaySearch(n=4, interval_cycles=40_000)
    sim.run(wl, tool=tool)
    return tool


class TestRecording:
    def test_one_record_per_interrupt(self, traced_tool):
        search_records = [r for r in traced_tool.trace if r.phase == "searching"]
        est_records = [r for r in traced_tool.trace if r.phase == "estimating"]
        assert len(search_records) == traced_tool.iterations
        assert len(est_records) >= 1

    def test_shares_normalised(self, traced_tool):
        for rec in traced_tool.trace:
            total_share = sum(r.share for r in rec.regions)
            assert total_share <= 1.0 + 1e-9

    def test_single_object_labels(self, traced_tool):
        last_search = [r for r in traced_tool.trace if r.phase == "searching"][-1]
        labels = {r.label for r in last_search.regions if r.single_object}
        assert labels <= {"A", "B", "C"}
        assert labels

    def test_termination_note(self, traced_tool):
        notes = [r.note for r in traced_tool.trace if r.note]
        assert "-> estimation" in notes

    def test_regions_narrow_over_time(self, traced_tool):
        widths = [
            max(r.interval.hi - r.interval.lo for r in rec.regions)
            for rec in traced_tool.trace
            if rec.phase == "searching" and rec.regions
        ]
        assert widths[-1] < widths[0]


class TestRenderer:
    def test_render_empty(self):
        assert "no search iterations" in render_trace([])

    def test_render_basic(self):
        records = [
            IterationRecord(
                iteration=1,
                phase="searching",
                total_misses=100,
                regions=[
                    MeasuredRegion(Interval(0, 1000), 0.9, False, "2 objs"),
                    MeasuredRegion(Interval(1000, 2000), 0.1, False, "2 objs"),
                ],
            )
        ]
        out = render_trace(records, width=40)
        assert "# 1 searching" in out
        assert "█" in out  # the 90% region renders dark
        assert "░" in out  # the 10% region renders faint

    def test_render_real_trace(self, traced_tool):
        out = render_trace(traced_tool.trace)
        assert "search convergence" in out
        assert out.count("|") >= 2 * len(traced_tool.trace)

    def test_summary(self, traced_tool):
        out = trace_summary(traced_tool.trace)
        assert f"iter {traced_tool.trace[0].iteration:>3}" in out
        assert "misses" in out

    def test_explicit_span(self):
        records = [
            IterationRecord(
                iteration=1,
                phase="searching",
                total_misses=10,
                regions=[MeasuredRegion(Interval(100, 200), 1.0, True, "x")],
            )
        ]
        out = render_trace(records, span=Interval(0, 1000), width=50)
        row = [l for l in out.splitlines() if "#" in l][0]
        body = row.split("|")[1]
        # The region occupies only the 10-20% stretch of the span.
        assert body[:4].strip() == ""
        assert "█" in body[5:12]
