"""Remaining coverage: greedy subclass details, profile edge cases,
ExperimentReport rendering."""


from repro.core.greedy_search import GreedySearch
from repro.core.profile import DataProfile, ObjectShare
from repro.core.search import NWaySearch
from repro.experiments.records import ExperimentReport


class TestGreedySubclass:
    def test_defaults(self):
        g = GreedySearch()
        assert g.n == 2
        assert g.backtracking is False
        assert g.name == "greedy-search"

    def test_kwargs_forwarded(self):
        g = GreedySearch(n=4, interval_cycles=1234)
        assert g.n == 4
        assert g.interval_cycles == 1234

    def test_cannot_force_backtracking(self):
        g = GreedySearch(n=2)
        assert g.backtracking is False


class TestProfileEdges:
    def test_empty_profile_table(self):
        prof = DataProfile(source="empty")
        out = prof.table()
        assert "empty" in out

    def test_min_share_zero_keeps_all(self):
        prof = DataProfile(
            source="s",
            shares=[ObjectShare(name="t", count=0, share=0.000001)],
        )
        assert prof.top(5, min_share=0.0) != []
        assert prof.top(5) == []  # default threshold excludes it

    def test_meta_default_empty(self):
        assert DataProfile(source="s").meta == {}


class TestExperimentReport:
    def test_str_includes_notes(self):
        report = ExperimentReport(
            experiment="x", table="the table", notes=["shape holds"]
        )
        text = str(report)
        assert "== x ==" in text
        assert "the table" in text
        assert "note: shape holds" in text

    def test_values_default(self):
        assert ExperimentReport(experiment="x", table="t").values == {}


class TestSearchValidationEdges:
    def test_max_results_override(self):
        tool = NWaySearch(n=10, max_results=3)
        assert tool.max_results == 3

    def test_max_interval_default_multiplier(self):
        tool = NWaySearch(interval_cycles=1000)
        assert tool.max_interval_cycles == 64_000

    def test_profile_before_run_is_empty(self):
        prof = NWaySearch().profile()
        assert len(prof) == 0
        assert prof.meta["iterations"] == 0
