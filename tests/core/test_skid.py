"""Tests for sampling skid (imprecise miss-address reporting).

Section 2.1 of the paper notes that without dedicated hardware, modern
processors make it "difficult to determine what instruction caused the
miss much less the effective address"; the study assumes an Itanium-like
precise register. The ``skid`` knob models the imprecise alternative:
the reported address lags the triggering miss by k events.
"""

import numpy as np
import pytest

from repro.cache import CacheConfig
from repro.core.report import max_share_error
from repro.core.sampling import SamplingProfiler
from repro.errors import CounterError
from repro.sim.engine import Simulator
from repro.workloads.patterns import interleave, stream_lines
from repro.workloads.base import Workload


class AlternatingPair(Workload):
    """Strictly alternating misses between two arrays: with skid=1 every
    sample attributes to the *other* array of the pair."""

    name = "pair"
    cycles_per_ref = 4.0

    def _declare(self):
        self.symbols.declare("ping", 512 * 1024)
        self.symbols.declare("pong", 512 * 1024)

    def _generate(self):
        ping, pong = self.symbols["ping"], self.symbols["pong"]
        cur = 0
        for _ in range(20):
            a = stream_lines(ping, 4000, 64, cur)
            b = stream_lines(pong, 4000, 64, cur)
            cur += 4000
            yield self.block(interleave(a, b))


def run_pair(skid, period):
    sim = Simulator(CacheConfig(size=64 * 1024), seed=1)
    tool = SamplingProfiler(period=period, skid=skid)
    return sim.run(AlternatingPair(seed=1), tool=tool)


class TestSkid:
    def test_negative_rejected(self):
        with pytest.raises(CounterError):
            SamplingProfiler(period=100, skid=-1)

    def test_zero_skid_is_precise(self):
        res = run_pair(skid=0, period=101)
        # Alternating pair: both near 50%.
        assert res.measured.share_of("ping") == pytest.approx(0.5, abs=0.05)

    def test_skid_swaps_alternating_attribution(self):
        """With an even period on a strict alternation, all samples land
        on one array; skid=1 flips them all to the other."""
        precise = run_pair(skid=0, period=100)
        skidded = run_pair(skid=1, period=100)
        p_top = precise.measured.names()[0]
        s_top = skidded.measured.names()[0]
        assert {p_top, s_top} == {"ping", "pong"}
        assert p_top != s_top

    def test_skid_within_object_is_harmless(self):
        """When consecutive misses stay inside one big object, skid does
        not change attribution — the paper's technique degrades gracefully."""
        from repro.workloads.synthetic import SyntheticStreams

        sim = Simulator(CacheConfig(size=64 * 1024), seed=1)

        def run(skid):
            wl = SyntheticStreams(
                {"big": (1024 * 1024, 90), "small": (256 * 1024, 10)},
                rounds=10,
                seed=1,
            )
            return sim.run(wl, tool=SamplingProfiler(period=97, skid=skid))

        base = run(0)
        skidded = run(4)
        err = max_share_error(base.measured, skidded.measured)
        assert err < 0.03

    def test_skid_recorded_in_meta(self):
        res = run_pair(skid=3, period=101)
        assert res.measured.meta["skid"] == 3

    def test_monitor_ring(self):
        from repro.hpm.monitor import PerformanceMonitor

        mon = PerformanceMonitor(1)
        mon.observe(np.array([10, 20, 30], dtype=np.uint64))
        assert mon.miss_addr_with_skid(0) == 30
        assert mon.miss_addr_with_skid(1) == 20
        assert mon.miss_addr_with_skid(2) == 10
        assert mon.miss_addr_with_skid(99) == 10  # clamps to oldest known
