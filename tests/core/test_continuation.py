"""Tests for search continuation (the paper's section 6 proposal).

"the search is limited in how many bottleneck objects it can identify by
the number of region cache miss counters available. This may be
correctable by returning to search previously discarded areas after the
ones causing the most cache misses have been examined fully."
"""

import pytest

from repro.cache import CacheConfig
from repro.core.search import NWaySearch, SearchPhase
from repro.errors import SearchError
from repro.sim.engine import Simulator
from repro.workloads.synthetic import SyntheticStreams

#: Eight arrays with distinct shares: a 4-way search (3 results/batch)
#: needs continuation to report them all.
MANY = {f"v{i}": (256 * 1024, 4 + 3 * i) for i in range(8)}


def run(continuation_rounds, n=4, rounds=120):
    sim = Simulator(CacheConfig(size=64 * 1024), seed=6)
    wl = SyntheticStreams(
        MANY, rounds=rounds, lines_per_round=6000, interleaved=True, seed=6
    )
    tool = NWaySearch(
        n=n,
        interval_cycles=25_000,
        continuation_rounds=continuation_rounds,
        estimate_rounds=4,
    )
    return sim.run(wl, tool=tool), tool


class TestContinuation:
    def test_negative_rejected(self):
        with pytest.raises(SearchError):
            NWaySearch(continuation_rounds=-1)

    def test_baseline_capped_at_n_minus_1(self):
        res, tool = run(continuation_rounds=0)
        assert len(res.measured) <= 3
        assert tool.batches_completed == 1

    def test_continuation_reports_more_objects(self):
        base, _ = run(continuation_rounds=0)
        more, tool = run(continuation_rounds=3)
        assert len(more.measured) > len(base.measured)
        assert tool.batches_completed > 1

    def test_no_duplicate_objects_across_batches(self):
        res, _ = run(continuation_rounds=3)
        names = res.measured.names()
        assert len(names) == len(set(names))

    def test_later_batches_are_cooler(self):
        """Batches come out hottest-first: the first batch's objects have
        higher actual shares than later batches'."""
        res, tool = run(continuation_rounds=3)
        actual = res.actual
        per_batch: dict[int, list[float]] = {}
        batch_size = 3
        for i, (obj, *_rest) in enumerate(tool.results):
            per_batch.setdefault(i // batch_size, []).append(actual.share_of(obj.name))
        if len(per_batch) >= 2:
            first = sum(per_batch[0]) / len(per_batch[0])
            last_key = max(per_batch)
            last = sum(per_batch[last_key]) / len(per_batch[last_key])
            assert first > last

    def test_shares_still_accurate(self):
        res, _ = run(continuation_rounds=3)
        for share in res.measured.shares:
            actual = res.actual.share_of(share.name)
            assert share.share == pytest.approx(actual, abs=0.06)

    def test_finishes_done(self):
        res, tool = run(continuation_rounds=2)
        assert tool.phase in (SearchPhase.DONE, SearchPhase.SEARCHING,
                              SearchPhase.ESTIMATING)
        assert res.measured.meta["batches"] == tool.batches_completed
