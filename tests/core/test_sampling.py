"""Tests for the miss-address sampling profiler."""

import numpy as np
import pytest

from repro.core.sampling import PeriodSchedule, SamplingProfiler, UNMAPPED
from repro.errors import CounterError
from repro.sim.engine import Simulator
from repro.cache import CacheConfig
from repro.workloads.synthetic import SyntheticStreams


def run_sampler(period=100, schedule=PeriodSchedule.FIXED, rounds=6, spec=None):
    sim = Simulator(CacheConfig(size=64 * 1024), seed=2)
    wl = SyntheticStreams(
        spec or {"A": (256 * 1024, 70), "B": (256 * 1024, 30)},
        rounds=rounds,
        lines_per_round=5000,
        interleaved=True,
        seed=2,
    )
    tool = SamplingProfiler(period=period, schedule=schedule, seed=2)
    return sim.run(wl, tool=tool), tool


class TestSchedules:
    def test_fixed(self):
        tool = SamplingProfiler(period=100)
        assert tool.next_period() == 100

    def test_prime(self):
        tool = SamplingProfiler(period=100, schedule="prime")
        assert tool.next_period() == 101  # smallest prime >= 100

    def test_prime_keeps_prime_period(self):
        tool = SamplingProfiler(period=97, schedule=PeriodSchedule.PRIME)
        assert tool.next_period() == 97

    def test_random_within_bounds(self):
        tool = SamplingProfiler(period=100, schedule=PeriodSchedule.RANDOM, seed=1)
        draws = {tool.next_period() for _ in range(50)}
        assert all(50 <= p < 150 for p in draws)
        assert len(draws) > 5

    def test_bad_period(self):
        with pytest.raises(CounterError):
            SamplingProfiler(period=0)


class TestEndToEnd:
    def test_sample_counts_proportional(self):
        res, tool = run_sampler(period=101, schedule=PeriodSchedule.PRIME)
        prof = res.measured
        assert prof.rank_of("A") == 1
        assert prof.rank_of("B") == 2
        assert abs(prof.share_of("A") - res.actual.share_of("A")) < 0.05

    def test_total_samples_matches_period(self):
        res, tool = run_sampler(period=500)
        expected = res.stats.total_misses // 500
        assert abs(tool.total_samples - expected) <= 2

    def test_profile_metadata(self):
        res, tool = run_sampler(period=100)
        meta = res.measured.meta
        assert meta["period"] == 100
        assert meta["schedule"] == "fixed"
        assert meta["samples"] == tool.total_samples

    def test_handler_cost_in_paper_band(self):
        res, _ = run_sampler(period=200)
        mean = res.stats.interrupts.mean_cycles()
        assert 8_900 <= mean <= 11_000  # ~9,000 cycles per sampling interrupt

    def test_perturbation_refs_emitted(self):
        res, _ = run_sampler(period=100)
        assert res.stats.instr_refs > 0

    def test_unmapped_addresses_bucketed(self, aspace):
        """Misses outside every object attribute to the UNMAPPED bucket."""
        from repro.workloads.base import Workload
        from repro.sim.blocks import ReferenceBlock

        class GapWorkload(Workload):
            name = "gap"
            cycles_per_ref = 2.0

            def _declare(self):
                self.symbols.declare("A", 64 * 1024, pad_after=1 << 20)

            def _generate(self):
                a = self.symbols["A"]
                # Stream A and the unmapped gap after it.
                gap_base = a.end + 4096
                yield ReferenceBlock(
                    addrs=np.arange(gap_base, gap_base + 64 * 2000, 64, dtype=np.uint64),
                    cycles_per_ref=2.0,
                )

        sim = Simulator(CacheConfig(size=16 * 1024), seed=0)
        tool = SamplingProfiler(period=50)
        res = sim.run(GapWorkload(), tool=tool)
        assert res.measured.share_of(UNMAPPED) > 0.9
