"""Tests for ground-truth miss attribution and the Figure-5 time series."""

import numpy as np

from repro.cache.attribution import GroundTruth, MissSeries
from tests.conftest import lines


class TestGroundTruth:
    def test_counts_and_shares(self, populated_map):
        omap, objs, _ = populated_map
        gt = GroundTruth(omap)
        gt.observe(lines(objs["A"], 10))
        gt.observe(lines(objs["B"], 30))
        assert gt.total_misses == 40
        assert gt.count_for(objs["A"].name) == 10
        assert gt.share_of(objs["B"].name) == 0.75
        assert gt.unattributed == 0

    def test_unattributed_counted(self, populated_map):
        omap, objs, _ = populated_map
        gt = GroundTruth(omap)
        gt.observe(np.array([1, 2, 3], dtype=np.uint64))
        assert gt.total_misses == 3
        assert gt.unattributed == 3

    def test_ranked_order(self, populated_map):
        omap, objs, _ = populated_map
        gt = GroundTruth(omap)
        gt.observe(lines(objs["A"], 5))
        gt.observe(lines(objs["C"], 20))
        ranked = gt.ranked()
        assert ranked[0][0].name == objs["C"].name
        assert ranked[0][1] == 20

    def test_profile(self, populated_map):
        omap, objs, _ = populated_map
        gt = GroundTruth(omap)
        gt.observe(lines(objs["A"], 10))
        prof = gt.profile()
        assert prof.source == "actual"
        assert prof.share_of(objs["A"].name) == 1.0
        assert prof.total_misses == 10

    def test_empty_profile(self, populated_map):
        omap, _, _ = populated_map
        gt = GroundTruth(omap)
        assert gt.profile().shares == []
        assert gt.share_of("anything") == 0.0

    def test_heap_churn_accumulates_by_name(self, populated_map):
        """A freed and reallocated block (same base address) keeps
        accumulating under its address-derived name."""
        omap, objs, heap = populated_map
        gt = GroundTruth(omap)
        name = objs["h2"].name
        gt.observe(lines(objs["h2"], 4))
        heap.free(objs["h2"])
        newblk = heap.malloc(4096)  # first-fit: same base, same name
        assert newblk.name == name
        gt.observe(lines(newblk, 4))
        assert gt.count_for(name) == 8

    def test_empty_observe_noop(self, populated_map):
        omap, _, _ = populated_map
        gt = GroundTruth(omap)
        gt.observe(np.array([], dtype=np.uint64))
        assert gt.total_misses == 0


class TestMissSeries:
    def test_bucketing(self, populated_map):
        omap, objs, _ = populated_map
        gt = GroundTruth(omap)
        series = gt.enable_series(bucket_cycles=1000)
        gt.observe(lines(objs["A"], 5), cycle=0)
        gt.observe(lines(objs["A"], 7), cycle=2500)
        out = series.series_for(objs["A"].name)
        assert out[0] == 5
        assert out[1] == 0
        assert out[2] == 7

    def test_names(self, populated_map):
        omap, objs, _ = populated_map
        gt = GroundTruth(omap)
        series = gt.enable_series(bucket_cycles=10)
        gt.observe(lines(objs["A"], 1), cycle=0)
        gt.observe(lines(objs["B"], 1), cycle=0)
        assert series.names() == sorted([objs["A"].name, objs["B"].name])

    def test_unknown_name_dense_zero(self):
        series = MissSeries(bucket_cycles=10)
        assert series.series_for("ghost").tolist() == [0]

    def test_no_cycle_no_series_entry(self, populated_map):
        omap, objs, _ = populated_map
        gt = GroundTruth(omap)
        series = gt.enable_series(bucket_cycles=10)
        gt.observe(lines(objs["A"], 3))  # no cycle passed
        assert series.names() == []
        assert gt.count_for(objs["A"].name) == 3
