"""Property-based tests for the cache models.

Three structural invariants that must hold for *any* reference stream:

* **LRU inclusion** — with the set mapping held fixed (same number of
  sets), a higher-associativity LRU cache's contents are a superset of a
  lower-associativity one's, so it can never miss where the smaller
  cache hits (Mattson et al.'s stack property, which is also what makes
  miss-ratio curves from one pass valid).
* **miss_budget exactness** — a budgeted access stops at exactly the
  reference whose miss exhausts the budget, and resubmitting the
  remainder reproduces the unbudgeted run bit-for-bit. The simulation
  engine relies on this to deliver counter-overflow interrupts at the
  precise reference rather than at chunk granularity.
* **direct-mapped equivalence** — the vectorised DirectMappedCache and
  a 1-way SetAssociativeCache are the same machine: identical miss
  masks, stats, and budget behaviour.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.config import CacheConfig
from repro.cache.direct_mapped import DirectMappedCache
from repro.cache.policies import ReplacementPolicy
from repro.cache.set_assoc import SetAssociativeCache

LINE = 64
N_SETS = 8  # tiny cache so random streams actually conflict


def config(assoc):
    return CacheConfig(size=LINE * assoc * N_SETS, line_size=LINE, assoc=assoc)


@st.composite
def line_streams(draw):
    """A reference stream as line numbers over a small, conflict-heavy
    address range (a few times the cache's line capacity)."""
    n = draw(st.integers(1, 400))
    max_line = draw(st.integers(N_SETS, N_SETS * 8))
    lines = draw(st.lists(st.integers(0, max_line), min_size=n, max_size=n))
    return np.asarray(lines, dtype=np.uint64) * np.uint64(LINE)


class TestLRUInclusion:
    @settings(max_examples=60, deadline=None)
    @given(line_streams(), st.sampled_from([(1, 2), (2, 4), (1, 4), (4, 8)]))
    def test_larger_assoc_never_misses_where_smaller_hits(self, addrs, pair):
        small_assoc, big_assoc = pair
        small = SetAssociativeCache(config(small_assoc))
        big = SetAssociativeCache(config(big_assoc))
        small_miss = small.access(addrs).miss_mask
        big_miss = big.access(addrs).miss_mask
        # Inclusion: a miss in the bigger cache implies one in the smaller.
        assert not np.any(big_miss & ~small_miss)
        assert big.stats.misses <= small.stats.misses

    @settings(max_examples=30, deadline=None)
    @given(line_streams())
    def test_inclusion_fails_without_lru_is_not_assumed(self, addrs):
        # FIFO gives no inclusion guarantee; we only assert the weaker
        # sanity property that both caches classify cold lines as misses.
        cfg = CacheConfig(
            size=LINE * 2 * N_SETS, line_size=LINE, assoc=2,
            policy=ReplacementPolicy.FIFO,
        )
        cache = SetAssociativeCache(cfg)
        miss = cache.access(addrs).miss_mask
        first_touch = np.zeros(len(addrs), dtype=bool)
        seen = set()
        for i, a in enumerate((addrs >> np.uint64(6)).tolist()):
            if a not in seen:
                first_touch[i] = True
                seen.add(a)
        assert np.all(miss[first_touch])


class TestMissBudget:
    @settings(max_examples=60, deadline=None)
    @given(line_streams(), st.integers(1, 50), st.sampled_from([1, 2, 4]))
    def test_budget_stops_at_overflowing_reference(self, addrs, budget, assoc):
        reference = SetAssociativeCache(config(assoc))
        full = reference.access(addrs).miss_mask
        total = int(full.sum())

        cache = SetAssociativeCache(config(assoc))
        res = cache.access(addrs, miss_budget=budget)
        if budget > total:
            assert res.consumed == len(addrs)
            assert np.array_equal(res.miss_mask, full)
        else:
            # Consumed ends exactly at the budget-th miss, inclusive.
            stop = int(np.flatnonzero(full)[budget - 1]) + 1
            assert res.consumed == stop
            assert int(res.miss_mask.sum()) == budget
            assert np.array_equal(res.miss_mask, full[:stop])
            # Resubmitting the remainder completes the unbudgeted run.
            rest = cache.access(addrs[stop:])
            assert np.array_equal(rest.miss_mask, full[stop:])
            assert cache.stats.misses == total
            assert cache.stats.accesses == len(addrs)

    @settings(max_examples=40, deadline=None)
    @given(line_streams(), st.integers(1, 50))
    def test_budget_direct_mapped(self, addrs, budget):
        reference = DirectMappedCache(config(1))
        full = reference.access(addrs).miss_mask
        total = int(full.sum())

        cache = DirectMappedCache(config(1))
        res = cache.access(addrs, miss_budget=budget)
        if budget > total:
            assert res.consumed == len(addrs)
        else:
            stop = int(np.flatnonzero(full)[budget - 1]) + 1
            assert res.consumed == stop
            assert int(res.miss_mask.sum()) == budget
            rest = cache.access(addrs[stop:])
            assert np.array_equal(rest.miss_mask, full[stop:])


class TestDirectMappedEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(line_streams())
    def test_matches_one_way_set_assoc(self, addrs):
        dm = DirectMappedCache(config(1))
        sa = SetAssociativeCache(config(1))
        dm_res = dm.access(addrs)
        sa_res = sa.access(addrs)
        assert np.array_equal(dm_res.miss_mask, sa_res.miss_mask)
        assert dm.stats.misses == sa.stats.misses
        assert dm.contents_line_count() == sa.contents_line_count()

    @settings(max_examples=40, deadline=None)
    @given(line_streams(), st.integers(1, 30))
    def test_matches_one_way_under_budget(self, addrs, budget):
        dm = DirectMappedCache(config(1))
        sa = SetAssociativeCache(config(1))
        dm_res = dm.access(addrs, miss_budget=budget)
        sa_res = sa.access(addrs, miss_budget=budget)
        assert dm_res.consumed == sa_res.consumed
        assert np.array_equal(dm_res.miss_mask, sa_res.miss_mask)
