"""The "auto" kernel backend: decision logic and bit-identity.

``backend="auto"`` starts on the array kernel, watches a probe window,
and switches to the reference kernel only for conflict-heavy RANDOM
replacement (the one regime where the array kernel's sequential
fallback loses to the plain loop). Whatever it decides, results must be
bit-identical to both fixed backends — the choice is a speed knob.
"""

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.cache.kernels.auto import PROBE_REFS, AutoKernel
from repro.cache.policies import ReplacementPolicy
from repro.cache.set_assoc import SetAssociativeCache

CFG_LRU = dict(size=16 * 1024, line_size=64, assoc=4)


def _uniform(n, n_lines, seed=3):
    rng = np.random.default_rng(seed)
    return rng.integers(0, n_lines, n).astype(np.uint64) * np.uint64(64)


def _run(backend, addrs, policy=ReplacementPolicy.LRU, chunk=1 << 14):
    cfg = CacheConfig(policy=policy, backend=backend, **CFG_LRU)
    cache = SetAssociativeCache(cfg, seed=7)
    for pos in range(0, len(addrs), chunk):
        cache.access(addrs[pos : pos + chunk])
    return cache


class TestDecision:
    def test_config_backend_auto_builds_the_auto_kernel(self):
        cache = SetAssociativeCache(CacheConfig(backend="auto", **CFG_LRU), seed=7)
        assert isinstance(cache._kernel, AutoKernel)

    def test_lru_stays_on_the_array_kernel(self):
        addrs = _uniform(PROBE_REFS + 4096, n_lines=2048)
        cache = _run("auto", addrs)
        assert cache._kernel._decided
        assert cache._kernel._inner.name == "array"

    def test_conflict_heavy_random_switches_to_reference(self):
        # 8x the cache in lines -> miss density far above the threshold.
        addrs = _uniform(PROBE_REFS + 4096, n_lines=2048)
        cache = _run("auto", addrs, policy=ReplacementPolicy.RANDOM)
        assert cache._kernel._decided
        assert cache._kernel._inner.name == "reference"

    def test_cache_resident_random_keeps_the_array_kernel(self):
        # Everything fits: near-zero miss density, no reason to switch.
        addrs = _uniform(PROBE_REFS + 4096, n_lines=128)
        cache = _run("auto", addrs, policy=ReplacementPolicy.RANDOM)
        assert cache._kernel._decided
        assert cache._kernel._inner.name == "array"


class TestBitIdentity:
    @pytest.mark.parametrize(
        "policy",
        [ReplacementPolicy.LRU, ReplacementPolicy.FIFO, ReplacementPolicy.RANDOM],
    )
    def test_auto_matches_fixed_backends_across_the_switch(self, policy):
        # Long enough to cross the probe boundary mid-stream.
        addrs = _uniform(PROBE_REFS + 50_000, n_lines=2048)
        stats = {
            backend: _run(backend, addrs, policy=policy).stats
            for backend in ("reference", "array", "auto")
        }
        baseline = stats["reference"]
        for backend in ("array", "auto"):
            assert stats[backend].misses == baseline.misses, backend
            assert stats[backend].writebacks == baseline.writebacks, backend
            assert stats[backend].accesses == baseline.accesses, backend


class TestSnapshot:
    def test_snapshot_preserves_the_committed_decision(self):
        addrs = _uniform(PROBE_REFS + 40_000, n_lines=2048)
        cache = _run("auto", addrs, policy=ReplacementPolicy.RANDOM)
        assert cache._kernel._inner.name == "reference"
        state = cache._kernel.snapshot()

        fresh = SetAssociativeCache(
            CacheConfig(
                policy=ReplacementPolicy.RANDOM, backend="auto", **CFG_LRU
            ),
            seed=7,
        )
        fresh._kernel.restore(state)
        assert fresh._kernel._decided
        assert fresh._kernel._inner.name == "reference"

        # Both continue identically from the restored state.
        tail = _uniform(30_000, n_lines=2048, seed=9)
        r1 = cache._kernel.access(tail)
        r2 = fresh._kernel.access(tail)
        assert r1.misses == r2.misses
        assert r1.writebacks == r2.writebacks

    def test_snapshot_preserves_a_pending_probe(self):
        addrs = _uniform(1 << 12, n_lines=2048)
        cache = _run("auto", addrs, chunk=1 << 12)
        kernel = cache._kernel
        assert not kernel._decided
        state = kernel.snapshot()
        fresh = SetAssociativeCache(
            CacheConfig(backend="auto", **CFG_LRU), seed=7
        )
        fresh._kernel.restore(state)
        assert not fresh._kernel._decided
        assert fresh._kernel._probe_refs == kernel._probe_refs
        assert fresh._kernel._probe_misses == kernel._probe_misses
