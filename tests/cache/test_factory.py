"""Tests for the cache factory and model-selection logic."""

import pytest

from repro.cache import (
    CacheConfig,
    DirectMappedCache,
    SetAssociativeCache,
    TwoLevelCache,
    make_cache,
)
from repro.errors import CacheConfigError


class TestMakeCache:
    def test_assoc1_gets_vectorised_model(self):
        cache = make_cache(CacheConfig(size=64 * 1024, assoc=1))
        assert isinstance(cache, DirectMappedCache)

    def test_assoc4_gets_sequential_model(self):
        cache = make_cache(CacheConfig(size=64 * 1024, assoc=4))
        assert isinstance(cache, SetAssociativeCache)

    def test_prefetch_forces_sequential_model(self):
        cache = make_cache(
            CacheConfig(size=64 * 1024, assoc=1), prefetch_next_line=True
        )
        assert isinstance(cache, SetAssociativeCache)
        assert cache.prefetch_next_line

    def test_l1_config_builds_hierarchy(self):
        cache = make_cache(
            CacheConfig(size=64 * 1024, assoc=4),
            l1_config=CacheConfig(size=8 * 1024, assoc=2),
        )
        assert isinstance(cache, TwoLevelCache)

    def test_hierarchy_plus_prefetch_rejected(self):
        with pytest.raises(CacheConfigError):
            make_cache(
                CacheConfig(size=64 * 1024, assoc=4),
                l1_config=CacheConfig(size=8 * 1024, assoc=2),
                prefetch_next_line=True,
            )


class TestSimulatorValidation:
    def test_bad_chunk_size(self):
        from repro.errors import SimulationError
        from repro.sim.engine import Simulator

        with pytest.raises(SimulationError):
            Simulator(chunk_size=0)

    def test_default_config(self):
        from repro.sim.engine import Simulator

        sim = Simulator()
        assert sim.cache_config.size == 256 * 1024


class TestBackendSelection:
    """The backend knob threads from CacheConfig / make_cache overrides
    down to the kernel actually instantiated."""

    def test_registry_contents(self):
        from repro.cache import KERNEL_BACKENDS, resolve_backend

        assert KERNEL_BACKENDS == ("reference", "array", "auto")
        assert resolve_backend(None) == "reference"
        assert resolve_backend("array") == "array"

    def test_unknown_backend_rejected(self):
        from repro.cache import resolve_backend

        with pytest.raises(CacheConfigError):
            resolve_backend("turbo")
        with pytest.raises(CacheConfigError):
            CacheConfig(size=64 * 1024, backend="turbo")

    def test_config_backend_reaches_kernel(self):
        cfg = CacheConfig(size=64 * 1024, assoc=4, backend="array")
        cache = make_cache(cfg)
        assert isinstance(cache, SetAssociativeCache)
        assert cache.backend == "array"
        assert cache._kernel.name == "array"

    def test_override_beats_config(self):
        cfg = CacheConfig(size=64 * 1024, assoc=4, backend="reference")
        cache = make_cache(cfg, backend="array")
        assert cache.backend == "array"
        assert cache._kernel.name == "array"

    def test_direct_mapped_serves_both_backends(self):
        for backend in ("reference", "array"):
            cache = make_cache(
                CacheConfig(size=64 * 1024, assoc=1), backend=backend
            )
            assert isinstance(cache, DirectMappedCache)
            assert cache.backend == backend

    def test_hierarchy_backend_propagates_to_both_levels(self):
        cache = make_cache(
            CacheConfig(size=64 * 1024, assoc=4),
            l1_config=CacheConfig(size=8 * 1024, assoc=2),
            backend="array",
        )
        assert isinstance(cache, TwoLevelCache)
        assert cache.backend == "array"
        assert cache._l1.name == "array"
        assert cache._l2.name == "array"

    def test_simulator_threads_backend(self):
        from repro.sim.engine import Simulator

        sim = Simulator(CacheConfig(size=64 * 1024, assoc=4), backend="array")
        assert sim.backend == "array"

    def test_runner_config_applies_backend_to_cache(self):
        from repro.experiments.runner import RunnerConfig

        cfg = RunnerConfig(seed=1, backend="array")
        assert cfg.cache.backend == "array"
        assert RunnerConfig(seed=1).cache.backend == "reference"

    def test_cli_exposes_backend_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["table1", "--backend", "array"])
        assert args.backend == "array"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--backend", "turbo"])
