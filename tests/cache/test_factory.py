"""Tests for the cache factory and model-selection logic."""

import pytest

from repro.cache import (
    CacheConfig,
    DirectMappedCache,
    SetAssociativeCache,
    TwoLevelCache,
    make_cache,
)
from repro.errors import CacheConfigError


class TestMakeCache:
    def test_assoc1_gets_vectorised_model(self):
        cache = make_cache(CacheConfig(size=64 * 1024, assoc=1))
        assert isinstance(cache, DirectMappedCache)

    def test_assoc4_gets_sequential_model(self):
        cache = make_cache(CacheConfig(size=64 * 1024, assoc=4))
        assert isinstance(cache, SetAssociativeCache)

    def test_prefetch_forces_sequential_model(self):
        cache = make_cache(
            CacheConfig(size=64 * 1024, assoc=1), prefetch_next_line=True
        )
        assert isinstance(cache, SetAssociativeCache)
        assert cache.prefetch_next_line

    def test_l1_config_builds_hierarchy(self):
        cache = make_cache(
            CacheConfig(size=64 * 1024, assoc=4),
            l1_config=CacheConfig(size=8 * 1024, assoc=2),
        )
        assert isinstance(cache, TwoLevelCache)

    def test_hierarchy_plus_prefetch_rejected(self):
        with pytest.raises(CacheConfigError):
            make_cache(
                CacheConfig(size=64 * 1024, assoc=4),
                l1_config=CacheConfig(size=8 * 1024, assoc=2),
                prefetch_next_line=True,
            )


class TestSimulatorValidation:
    def test_bad_chunk_size(self):
        from repro.errors import SimulationError
        from repro.sim.engine import Simulator

        with pytest.raises(SimulationError):
            Simulator(chunk_size=0)

    def test_default_config(self):
        from repro.sim.engine import Simulator

        sim = Simulator()
        assert sim.cache_config.size == 256 * 1024
