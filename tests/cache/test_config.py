"""Tests for cache geometry validation."""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.policies import ReplacementPolicy
from repro.errors import CacheConfigError


class TestValidation:
    def test_defaults(self):
        cfg = CacheConfig()
        assert cfg.size == 256 * 1024
        assert cfg.n_sets * cfg.assoc * cfg.line_size == cfg.size

    def test_string_size(self):
        assert CacheConfig(size="2M").size == 2 * 1024 * 1024

    def test_paper_preset(self):
        cfg = CacheConfig.paper()
        assert cfg.size == 2 * 1024 * 1024

    @pytest.mark.parametrize("size", [0, 100, 3 * 1024])
    def test_bad_sizes(self, size):
        with pytest.raises(CacheConfigError):
            CacheConfig(size=size)

    def test_bad_line(self):
        with pytest.raises(CacheConfigError):
            CacheConfig(line_size=48)

    def test_bad_assoc(self):
        with pytest.raises(CacheConfigError):
            CacheConfig(assoc=0)

    def test_nonpow2_sets_rejected(self):
        with pytest.raises(CacheConfigError):
            CacheConfig(size=64 * 1024, line_size=64, assoc=3)


class TestDerived:
    def test_geometry(self):
        cfg = CacheConfig(size=64 * 1024, line_size=64, assoc=4)
        assert cfg.n_lines == 1024
        assert cfg.n_sets == 256
        assert cfg.line_bits == 6
        assert cfg.set_mask == 255

    def test_set_of_and_line_of(self):
        cfg = CacheConfig(size=64 * 1024, line_size=64, assoc=4)
        assert cfg.line_of(0) == 0
        assert cfg.line_of(64) == 1
        assert cfg.set_of(64) == 1
        # Set index wraps at n_sets lines.
        assert cfg.set_of(64 * cfg.n_sets) == 0

    def test_describe(self):
        text = CacheConfig(policy=ReplacementPolicy.FIFO).describe()
        assert "fifo" in text
        assert "256KiB" in text
