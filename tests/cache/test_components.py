"""Component pipeline and mechanism-decorator tests.

Covers the ISSUE-8 protocol contracts: leaf evolution is untouched by
decoration, every ledger's counters reconcile across the stack,
``backend="auto"``/``"array"`` never mis-dispatch a decorated config,
and budget-limited chunking is equivalent to unsplit access. Property
tests drive random streams through every stack shape.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    CacheConfig,
    CacheStats,
    MechanismSpec,
    MissCache,
    Pipeline,
    ReplacementPolicy,
    SetAssociativeCache,
    StreamBuffers,
    TwoLevelCache,
    VictimCache,
    make_cache,
    parse_mechanisms,
    wrap_mechanisms,
)
from repro.errors import CacheConfigError

pytestmark = pytest.mark.mechanisms

#: 4 KiB, 2-way, 64 B lines -> 64 lines in 32 sets.
CFG = CacheConfig(size=4096, line_size=64, assoc=2)

STACKS = ["vc", "mc", "sb", "vc+sb", "mc+sb"]


def addrs_of(lines):
    return np.asarray(lines, dtype=np.uint64) * np.uint64(CFG.line_size)


def conflict_stream(n_rounds=200, ways=3):
    """Cycle ``ways`` lines that all map to set 0 (thrashes 2-way LRU)."""
    n_sets = CFG.n_sets
    return addrs_of([(i % ways) * n_sets for i in range(n_rounds * ways)])


def sequential_stream(n=600):
    return addrs_of(range(n))


def random_stream(seed=0, n=3000, span=400):
    rng = np.random.default_rng(seed)
    return addrs_of(rng.integers(0, span, size=n))


def ledgers_of(cache):
    return dict(cache.component_ledgers())


def decorated(mech, config=CFG, seed=None):
    return make_cache(
        dataclasses.replace(config, mechanisms=mech), seed=seed
    )


# ----------------------------------------------------------- construction


class TestConstruction:
    def test_empty_stack_is_plain_cache(self):
        cache = make_cache(dataclasses.replace(CFG, mechanisms=()))
        assert type(cache) is SetAssociativeCache

    def test_wrap_order_last_listed_outermost(self):
        cache = decorated("vc+sb")
        assert isinstance(cache, StreamBuffers)
        assert isinstance(cache.inner, VictimCache)
        assert isinstance(cache.inner.inner, SetAssociativeCache)

    def test_mechanism_spec_parsing(self):
        specs = parse_mechanisms("vc:4+sb:2:8")
        assert specs == (
            MechanismSpec("vc", 4),
            MechanismSpec("sb", 2, 8),
        )
        assert parse_mechanisms(None) == ()
        assert parse_mechanisms("none") == ()
        with pytest.raises(CacheConfigError):
            parse_mechanisms("tlb")

    def test_prefetch_flag_conflicts_with_mechanisms(self):
        with pytest.raises(CacheConfigError, match=r"vc\(8\).*stream buffers"):
            make_cache(
                dataclasses.replace(CFG, mechanisms="vc"),
                prefetch_next_line=True,
            )

    def test_ledger_labels(self):
        assert [k for k, _ in decorated("vc+sb").component_ledgers()] == [
            "sb", "vc", "cache",
        ]
        two = make_cache(
            dataclasses.replace(
                CFG, size=16 * 1024, mechanisms="mc"
            ),
            l1_config=CFG,
        )
        assert [k for k, _ in two.component_ledgers()] == ["mc", "l1", "l2"]


class TestDispatch:
    """Satellite 1: decorated configs must never leave the reference kernel."""

    @pytest.mark.parametrize("backend", ["auto", "array", None])
    def test_decorated_stack_forces_reference_kernel(self, backend):
        cfg = dataclasses.replace(CFG, mechanisms="vc+sb")
        cache = make_cache(cfg, backend=backend)
        leaf = cache.inner.inner
        assert leaf._kernel.name == "reference"
        # And it actually runs (the array kernel would lack _sets).
        cache.access(conflict_stream(5))

    @pytest.mark.parametrize("backend", ["auto", "array"])
    def test_undecorated_dispatch_unchanged(self, backend):
        cache = make_cache(CFG, backend=backend)
        assert cache._kernel.name == backend


# ------------------------------------------------------------- mechanics


class TestVictimCache:
    def test_rescues_conflict_misses(self):
        stream = conflict_stream()
        plain = make_cache(CFG)
        plain.access(stream)
        vc = decorated("vc")
        vc.access(stream)
        # 3 lines fighting over a 2-way set: the VC holds the loser, so
        # after warmup everything hits the stack.
        assert vc.stats.misses == 3
        assert plain.stats.misses == len(stream)
        assert vc.stats.mechanism["vc_hits"] == plain.stats.misses - 3

    def test_leaf_evolution_unchanged(self):
        stream = random_stream()
        plain = make_cache(CFG)
        plain.access(stream)
        vc = decorated("vc")
        vc.access(stream)
        leaf = ledgers_of(vc)["cache"]
        assert leaf.misses == plain.stats.misses
        assert leaf.accesses == plain.stats.accesses

    def test_exclusive_of_leaf(self):
        vc = decorated("vc")
        vc.access(random_stream())
        leaf = vc.inner
        for line in vc.resident_lines():
            assert not leaf.contains_addr(int(line) << CFG.line_bits)


class TestMissCache:
    def test_rescues_conflict_misses(self):
        mc = decorated("mc")
        mc.access(conflict_stream())
        assert mc.stats.misses == 3
        assert mc.stats.mechanism["mc_hits"] > 0

    def test_duplication_allowed(self):
        """The MC fills on miss without evicting the leaf's copy."""
        mc = decorated("mc")
        mc.access(addrs_of([0, 0]))
        assert 0 in mc.resident_lines()
        assert mc.inner.contains_addr(0)


class TestStreamBuffers:
    def test_rescues_sequential_misses(self):
        sb = decorated("sb")
        stream = sequential_stream()
        sb.access(stream)
        # One cold miss allocates a buffer; the rest stream out of it.
        assert sb.stats.misses == 1
        assert sb.stats.mechanism["sb_hits"] == len(stream) - 1

    def test_hits_bounded_by_prefetches(self):
        sb = decorated("sb")
        sb.access(random_stream(seed=1))
        m = sb.stats.mechanism
        assert m["sb_hits"] <= m["sb_prefetches"]

    def test_prefetches_counted_in_stats(self):
        sb = decorated("sb")
        sb.access(sequential_stream(50))
        assert sb.stats.prefetches == sb.stats.mechanism["sb_prefetches"]


# ------------------------------------------------------- ledger identities


def chain_invariants(cache, stream):
    """The cross-component counter identities every stack must satisfy."""
    ledgers = cache.component_ledgers()
    # Every component saw (and recorded) every reference.
    for _, stats in ledgers:
        assert stats.accesses == len(stream)
    # Decorator ledgers: probes == post-rescue misses of the component
    # just inside; hits + own misses == probes.
    for (kind, outer), (_, inner) in zip(ledgers, ledgers[1:]):
        if kind in ("vc", "mc", "sb"):
            m = outer.mechanism
            assert m[f"{kind}_probes"] == inner.misses
            assert m[f"{kind}_hits"] + outer.misses == m[f"{kind}_probes"]
            if kind == "sb":
                assert m["sb_hits"] <= m["sb_prefetches"]


class TestLedgers:
    @pytest.mark.parametrize("mech", STACKS)
    def test_chain_identities(self, mech):
        stream = random_stream(seed=3)
        cache = decorated(mech)
        cache.access(stream)
        chain_invariants(cache, stream)

    @pytest.mark.parametrize("mech", STACKS)
    def test_leaf_matches_undecorated(self, mech):
        stream = random_stream(seed=4)
        plain = make_cache(CFG)
        plain.access(stream)
        cache = decorated(mech)
        cache.access(stream)
        leaf = cache.component_ledgers()[-1][1]
        assert (leaf.accesses, leaf.misses, leaf.writebacks) == (
            plain.stats.accesses,
            plain.stats.misses,
            plain.stats.writebacks,
        )

    def test_merge_associative_across_ledgers(self):
        cache = decorated("vc+sb")
        cache.access(random_stream(seed=5))
        snaps = [s.snapshot() for _, s in cache.component_ledgers()]
        a, b, c = snaps
        left = a.snapshot().merge(b.snapshot()).merge(c.snapshot())
        right = a.snapshot().merge(b.snapshot().merge(c.snapshot()))
        assert left.__dict__ == right.__dict__

    def test_pipeline_stats_alias_and_sums(self):
        l1 = CacheConfig(size=2048, line_size=64, assoc=2)
        l2 = CacheConfig(size=16 * 1024, line_size=64, assoc=4)
        cache = TwoLevelCache(l1, l2, seed=9)
        stream = random_stream(seed=6, span=600)
        cache.access(stream)
        ledgers = dict(cache.component_ledgers())
        assert cache.stats is ledgers["l2"]
        # Both levels account every reference under the same tag.
        assert ledgers["l1"].accesses == len(stream)
        assert ledgers["l2"].accesses == len(stream)
        assert ledgers["l1"].misses >= ledgers["l2"].misses
        combined = cache.combined_stats()
        assert combined.accesses == 2 * len(stream)


# -------------------------------------------------------- budget chunking


class TestBudget:
    @pytest.mark.parametrize("mech", STACKS)
    def test_budget_resume_equals_unsplit(self, mech):
        stream = random_stream(seed=7)
        whole = decorated(mech)
        res = whole.access(stream)
        split = decorated(mech)
        masks = []
        pos = 0
        while pos < len(stream):
            r = split.access(stream[pos:], miss_budget=17)
            masks.append(r.miss_mask)
            pos += r.consumed
        assert np.array_equal(np.concatenate(masks), res.miss_mask)
        assert split.stats.__dict__ == whole.stats.__dict__
        assert split.resident_lines() == whole.resident_lines()

    def test_budget_stops_exactly_on_posted_miss(self):
        cache = decorated("vc")
        stream = sequential_stream(100)
        r = cache.access(stream, miss_budget=10)
        assert r.miss_mask[r.consumed - 1]
        assert int(r.miss_mask.sum()) == 10


# ------------------------------------------------------------ state round trip


class TestState:
    @pytest.mark.parametrize("mech", STACKS)
    def test_snapshot_restore_round_trip(self, mech):
        stream = random_stream(seed=8)
        cache = decorated(mech)
        cache.access(stream[:1500])
        state = cache.state_snapshot()
        after = decorated(mech)
        after.state_restore(state)
        a = cache.access(stream[1500:])
        b = after.access(stream[1500:])
        assert np.array_equal(a.miss_mask, b.miss_mask)
        assert cache.resident_lines() == after.resident_lines()


# ----------------------------------------------------------- property tests


line_streams = st.lists(
    st.integers(min_value=0, max_value=3 * CFG.n_lines),
    min_size=1,
    max_size=400,
)


@settings(max_examples=60, deadline=None)
@given(lines=line_streams, mech=st.sampled_from(STACKS))
def test_property_chain_invariants(lines, mech):
    stream = addrs_of(lines)
    plain = make_cache(CFG)
    plain.access(stream)
    cache = decorated(mech)
    cache.access(stream)
    chain_invariants(cache, stream)
    leaf = cache.component_ledgers()[-1][1]
    assert leaf.misses == plain.stats.misses
    # The post-mechanism miss stream can only shrink.
    assert cache.stats.misses <= plain.stats.misses


@settings(max_examples=40, deadline=None)
@given(lines=line_streams)
def test_property_vc_exclusive_and_bounded(lines):
    cache = decorated("vc:4")
    cache.access(addrs_of(lines))
    resident = cache.resident_lines()
    assert len(resident) <= 4
    for line in resident:
        assert not cache.inner.contains_addr(int(line) << CFG.line_bits)


@settings(max_examples=40, deadline=None)
@given(lines=line_streams, seed=st.integers(0, 5))
def test_property_random_policy_split_invariance(lines, seed):
    """RANDOM replacement draws depend only on eviction count, so
    budget-split and unsplit runs stay bit-identical under decoration."""
    cfg = dataclasses.replace(CFG, policy=ReplacementPolicy.RANDOM)
    stream = addrs_of(lines)
    whole = make_cache(
        dataclasses.replace(cfg, mechanisms="vc"), seed=seed
    )
    res = whole.access(stream)
    split = make_cache(
        dataclasses.replace(cfg, mechanisms="vc"), seed=seed
    )
    masks, pos = [], 0
    while pos < len(stream):
        r = split.access(stream[pos:], miss_budget=5)
        masks.append(r.miss_mask)
        pos += r.consumed
    assert np.array_equal(np.concatenate(masks), res.miss_mask)


def test_wrap_mechanisms_empty_returns_same_object():
    leaf = SetAssociativeCache(CFG)
    assert wrap_mechanisms(leaf, ()) is leaf


def test_pipeline_rejects_bad_geometry():
    big = CacheConfig(size=16 * 1024, line_size=64, assoc=2)
    with pytest.raises(CacheConfigError, match="smaller"):
        Pipeline(
            [SetAssociativeCache(big), SetAssociativeCache(CFG)]
        )


def test_miss_cache_is_distinct_type():
    cache = decorated("mc:2")
    assert isinstance(cache, MissCache)
    assert cache.entries == 2
