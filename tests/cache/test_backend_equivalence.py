"""Differential harness: the "array" backend must be bit-identical to
the "reference" backend.

Randomized workloads are replayed through both backends chunk by chunk;
after every chunk the AccessResults (miss mask + consumed) and the full
CacheStats must match exactly, including mid-chunk ``miss_budget`` stops,
write masks, prefetching and the seeded RANDOM-eviction stream. At the
end the observable set state (per-set residency order, dirty counts) must
match too, so a divergence can never hide between chunks.
"""

import dataclasses

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.cache.hierarchy import TwoLevelCache
from repro.cache.policies import ReplacementPolicy
from repro.cache.set_assoc import SetAssociativeCache

POLICIES = list(ReplacementPolicy)


def addrs_of_lines(line_numbers, line_size=64):
    return np.asarray(line_numbers, dtype=np.uint64) * np.uint64(line_size)


def make_pair(cfg, seed=11, prefetch=False):
    return (
        SetAssociativeCache(
            cfg, seed=seed, prefetch_next_line=prefetch, backend="reference"
        ),
        SetAssociativeCache(
            cfg, seed=seed, prefetch_next_line=prefetch, backend="array"
        ),
    )


def assert_same_state(ref, arr, cfg):
    for set_idx in range(cfg.n_sets):
        assert ref.lines_in_set(set_idx) == arr.lines_in_set(set_idx), set_idx
    assert ref.contents_line_count() == arr.contents_line_count()
    assert ref.dirty_line_count() == arr.dirty_line_count()


def replay(ref, arr, chunks, budgets=None, writes=None):
    """Feed both backends the same chunks, asserting equality throughout."""
    for k, chunk in enumerate(chunks):
        budget = budgets[k] if budgets is not None else None
        w = writes[k] if writes is not None else None
        pos = 0
        while pos < len(chunk):
            sub = chunk[pos:]
            sub_w = w[pos:] if w is not None else None
            ra = ref.access(sub, miss_budget=budget, writes=sub_w)
            rb = arr.access(sub, miss_budget=budget, writes=sub_w)
            assert ra.consumed == rb.consumed, f"chunk {k}"
            assert np.array_equal(ra.miss_mask, rb.miss_mask), f"chunk {k}"
            assert ref.stats.__dict__ == arr.stats.__dict__, f"chunk {k}"
            pos += ra.consumed


def random_stream(rng, n, n_lines, follower_frac=0.5):
    """Random lines with ``follower_frac`` consecutive same-line repeats,
    the shape the workload generators emit for spatial locality."""
    lines = rng.integers(0, n_lines, n)
    rep = rng.random(n) < follower_frac
    return addrs_of_lines(np.repeat(lines, 1 + rep.astype(int))[:n])


class TestRandomizedReplay:
    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.value)
    @pytest.mark.parametrize("assoc", [1, 2, 4, 8])
    def test_policy_assoc_grid(self, policy, assoc):
        cfg = CacheConfig(
            size=64 * assoc * 32, line_size=64, assoc=assoc, policy=policy
        )
        ref, arr = make_pair(cfg, seed=7)
        rng = np.random.default_rng(assoc * 100 + hash(policy.value) % 97)
        chunks, budgets, writes = [], [], []
        for _ in range(25):
            n = int(rng.integers(1, 600))
            chunks.append(random_stream(rng, n, n_lines=3 * cfg.n_lines))
            budgets.append(
                int(rng.integers(1, 30)) if rng.random() < 0.5 else None
            )
            writes.append(
                rng.random(len(chunks[-1])) < 0.3
                if rng.random() < 0.5
                else None
            )
        replay(ref, arr, chunks, budgets, writes)
        assert_same_state(ref, arr, cfg)

    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.value)
    def test_prefetch_equivalence(self, policy):
        cfg = CacheConfig(size=4096, line_size=64, assoc=4, policy=policy)
        ref, arr = make_pair(cfg, seed=3, prefetch=True)
        rng = np.random.default_rng(17)
        chunks = [random_stream(rng, 300, 128) for _ in range(15)]
        budgets = [int(rng.integers(1, 25)) if i % 2 else None for i in range(15)]
        writes = [rng.random(len(c)) < 0.4 for c in chunks]
        replay(ref, arr, chunks, budgets, writes)
        assert_same_state(ref, arr, cfg)
        assert ref.stats.prefetches > 0  # the feature actually fired

    def test_random_policy_pool_stays_in_sync(self):
        """RANDOM evictions must consume the shared pool identically even
        when chunk sizes (which gate the refill rule) differ wildly."""
        cfg = CacheConfig(
            size=16 * 1024, assoc=4, policy=ReplacementPolicy.RANDOM
        )
        ref, arr = make_pair(cfg, seed=123)
        rng = np.random.default_rng(5)
        for n in (1, 4096, 3, 900, 5000, 17, 2500):
            addrs = random_stream(rng, n, 2048)
            ra = ref.access(addrs)
            rb = arr.access(addrs)
            assert np.array_equal(ra.miss_mask, rb.miss_mask)
        assert_same_state(ref, arr, cfg)


class TestBatchPath:
    """Chunks large enough to trigger the array kernel's vectorised
    guaranteed-miss batching, with and without budget stops."""

    def test_streaming_chunks(self):
        cfg = CacheConfig(size=256 * 1024, assoc=4)
        ref, arr = make_pair(cfg)
        base = 0
        for _ in range(5):
            lines = np.repeat(np.arange(base, base + 8000, dtype=np.uint64), 2)
            base += 8000
            replay(ref, arr, [addrs_of_lines(lines)])
        assert_same_state(ref, arr, cfg)

    def test_streaming_with_budget_stops(self):
        cfg = CacheConfig(size=256 * 1024, assoc=4)
        ref, arr = make_pair(cfg)
        lines = np.repeat(np.arange(20000, dtype=np.uint64), 2)
        replay(ref, arr, [addrs_of_lines(lines)], budgets=[997])
        assert_same_state(ref, arr, cfg)

    def test_streaming_over_dirty_state(self):
        """Batched evictions must write back dirty lines left by earlier
        write chunks."""
        cfg = CacheConfig(size=8 * 1024, assoc=4)
        ref, arr = make_pair(cfg)
        warm = addrs_of_lines(np.arange(128, dtype=np.uint64))
        wmask = np.ones(128, dtype=bool)
        ref.access(warm, writes=wmask)
        arr.access(warm, writes=wmask)
        # Clean streaming sweep evicts the dirty lines via the batch path.
        sweep = addrs_of_lines(np.arange(1000, 6000, dtype=np.uint64))
        replay(ref, arr, [sweep])
        assert ref.stats.writebacks > 0
        assert ref.stats.__dict__ == arr.stats.__dict__
        assert_same_state(ref, arr, cfg)

    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.value)
    def test_hit_run_promotes(self, policy):
        """All-hit chunks over a warm cache (the certified-hit run path):
        LRU promote order must match the per-reference loop exactly."""
        cfg = CacheConfig(size=64 * 1024, assoc=4, policy=policy)
        ref, arr = make_pair(cfg, seed=21)
        rng = np.random.default_rng(13)
        warm = addrs_of_lines(np.arange(1024, dtype=np.uint64))
        ref.access(warm)
        arr.access(warm)
        for _ in range(6):  # in-cache reuse: every chunk is pure hits
            replay(ref, arr, [addrs_of_lines(rng.integers(0, 1024, 8000))])
        assert ref.stats.misses == 1024  # only the warmup cold misses
        assert_same_state(ref, arr, cfg)

    def test_alternating_hit_and_miss_runs(self):
        """Chunks that alternate long hit runs with long miss runs drive
        the phase loop through both run kinds against live state."""
        cfg = CacheConfig(size=64 * 1024, assoc=4)
        ref, arr = make_pair(cfg, seed=5)
        rng = np.random.default_rng(41)
        hot = np.arange(512, dtype=np.uint64)
        cold = 10_000
        pieces = []
        for _ in range(6):
            pieces.append(rng.permutation(hot))
            pieces.append(np.arange(cold, cold + 700, dtype=np.uint64))
            cold += 700
        chunk = addrs_of_lines(np.concatenate(pieces))
        ref.access(addrs_of_lines(hot))
        arr.access(addrs_of_lines(hot))
        replay(ref, arr, [chunk])
        replay(ref, arr, [chunk], budgets=[151])  # budget cut mid-phase
        assert_same_state(ref, arr, cfg)

    def test_fifo_streaming(self):
        cfg = CacheConfig(size=64 * 1024, assoc=8, policy=ReplacementPolicy.FIFO)
        ref, arr = make_pair(cfg)
        rng = np.random.default_rng(2)
        for _ in range(4):
            replay(ref, arr, [random_stream(rng, 8192, 4096, 0.5)])
        assert_same_state(ref, arr, cfg)


class TestHierarchyBackends:
    def make_pair(self, seed=9):
        l1 = CacheConfig(size=4 * 1024, assoc=2)
        l2 = CacheConfig(size=64 * 1024, assoc=4)
        return (
            TwoLevelCache(l1, l2, backend="reference", seed=seed),
            TwoLevelCache(l1, l2, backend="array", seed=seed),
        )

    def test_hierarchy_equivalence_with_budgets(self):
        ref, arr = self.make_pair()
        rng = np.random.default_rng(31)
        for k in range(12):
            stream = addrs_of_lines(rng.integers(0, 4096, 3000))
            budget = int(rng.integers(1, 40)) if k % 2 else None
            pos = 0
            while pos < len(stream):
                ra = ref.access(stream[pos:], miss_budget=budget)
                rb = arr.access(stream[pos:], miss_budget=budget)
                assert ra.consumed == rb.consumed
                assert np.array_equal(ra.miss_mask, rb.miss_mask)
                assert ref.stats.__dict__ == arr.stats.__dict__
                assert ref.l1_stats.__dict__ == arr.l1_stats.__dict__
                pos += ra.consumed
        assert ref.contents_line_count() == arr.contents_line_count()
        assert ref.l1_contents_line_count() == arr.l1_contents_line_count()


class TestEndToEnd:
    """Whole-pipeline equality: simulated runs and experiment-grid keys."""

    def test_simulator_runs_identical(self):
        from repro.core.sampling import SamplingProfiler
        from repro.sim.engine import Simulator
        from repro.workloads.registry import make_workload

        results = {}
        for backend in ("reference", "array"):
            sim = Simulator(
                CacheConfig(size=256 * 1024, assoc=4),
                seed=99,
                backend=backend,
            )
            wl = make_workload("tomcatv", seed=99, n_steps=4, rows_per_step=16)
            tool = SamplingProfiler(period=2048, seed=99)
            results[backend] = sim.run(wl, tool=tool)
        a, b = results["reference"], results["array"]
        assert a.stats.app_refs == b.stats.app_refs
        assert a.stats.app_misses == b.stats.app_misses
        assert a.stats.app_cycles == b.stats.app_cycles
        assert a.stats.instr_refs == b.stats.instr_refs
        assert a.stats.instr_misses == b.stats.instr_misses
        assert len(a.stats.interrupts) == len(b.stats.interrupts)
        assert a.actual.as_dict() == b.actual.as_dict()
        assert a.measured.as_dict() == b.measured.as_dict()

    def test_backend_is_part_of_task_key(self):
        from repro.experiments.parallel import SimSpec, TaskSpec

        def key_for(backend):
            cfg = CacheConfig(size=256 * 1024, assoc=4, backend=backend)
            return TaskSpec(workload="tomcatv", sim=SimSpec(cache=cfg)).key()

        assert key_for("reference") != key_for("array")

    def test_backend_flows_from_config_replace(self):
        cfg = dataclasses.replace(CacheConfig(), backend="array")
        cache = SetAssociativeCache(cfg)
        assert cache.backend == "array"
