"""CacheConfigError messages for decorated stacks name the mechanisms.

Regression tests for the error-message contract: when a mechanism stack
blocks a path (the MRC model, the prefetch kernel), the error must say
*which* stack (the ``MechanismSpec.describe()`` strings) and point at
the exact-sweep fallback (``repro mechanisms``), so the user can act on
it without reading source.
"""

from __future__ import annotations

import pytest

from repro.cache import CacheConfig, make_cache
from repro.errors import CacheConfigError


class TestMakeCachePrefetchOnDecorated:
    def test_names_the_stack_and_the_fallback(self):
        cfg = CacheConfig(size=16 * 1024, mechanisms="vc:16+sb:4:8")
        with pytest.raises(CacheConfigError) as err:
            make_cache(cfg, prefetch_next_line=True)
        message = str(err.value)
        assert "vc(16)+sb(4x8)" in message
        assert "repro mechanisms" in message


class TestMrcOnDecorated:
    def test_names_the_stack_and_the_fallback(self):
        from repro.experiments.mrc import _require_undecorated
        from repro.experiments.runner import ExperimentRunner, RunnerConfig

        runner = ExperimentRunner(
            RunnerConfig(mechanisms="mc:4", seed=1), quick=True
        )
        with pytest.raises(CacheConfigError) as err:
            _require_undecorated(runner)
        message = str(err.value)
        assert "mc(4)" in message
        assert "repro mechanisms" in message

    def test_run_mrc_surfaces_the_same_error(self):
        from repro.experiments.mrc import mrc_pass
        from repro.experiments.runner import ExperimentRunner, RunnerConfig

        runner = ExperimentRunner(
            RunnerConfig(mechanisms="vc", seed=1), quick=True
        )
        with pytest.raises(CacheConfigError, match=r"vc\(8\)"):
            mrc_pass(runner, "compress")
