"""Property-based backend equivalence (satellite of the kernel refactor).

Hypothesis drives both kernels with arbitrary access streams, random
miss-budget cuts and write masks across every replacement policy and
associativity, shrinking any divergence to a minimal counterexample.
Complements tests/cache/test_backend_equivalence.py, which replays fixed
randomized workloads; this file lets hypothesis search the corner cases
(tiny sets, duplicate bursts, budget landing on a follower, ...).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.config import CacheConfig
from repro.cache.policies import ReplacementPolicy
from repro.cache.set_assoc import SetAssociativeCache

LINE = 64


@st.composite
def chunk_plans(draw):
    """A list of (lines, budget, writes) chunks for one cache lifetime."""
    n_chunks = draw(st.integers(1, 6))
    plans = []
    for _ in range(n_chunks):
        lines = draw(
            st.lists(st.integers(0, 255), min_size=0, max_size=200)
        )
        budget = draw(st.one_of(st.none(), st.integers(0, 20)))
        if draw(st.booleans()):
            writes = draw(
                st.lists(
                    st.booleans(),
                    min_size=len(lines),
                    max_size=len(lines),
                )
            )
        else:
            writes = None
        plans.append((lines, budget, writes))
    return plans


@settings(max_examples=60, deadline=None)
@given(
    policy=st.sampled_from(list(ReplacementPolicy)),
    assoc=st.sampled_from([1, 2, 4, 8]),
    n_sets_pow=st.integers(0, 4),
    seed=st.integers(0, 2**16),
    prefetch=st.booleans(),
    plans=chunk_plans(),
)
def test_array_matches_reference(policy, assoc, n_sets_pow, seed, prefetch, plans):
    n_sets = 1 << n_sets_pow
    cfg = CacheConfig(
        size=LINE * assoc * n_sets, line_size=LINE, assoc=assoc, policy=policy
    )
    ref = SetAssociativeCache(
        cfg, seed=seed, prefetch_next_line=prefetch, backend="reference"
    )
    arr = SetAssociativeCache(
        cfg, seed=seed, prefetch_next_line=prefetch, backend="array"
    )
    for lines, budget, writes in plans:
        addrs = np.asarray(lines, dtype=np.uint64) * np.uint64(LINE)
        wmask = None if writes is None else np.asarray(writes, dtype=bool)
        pos = 0
        while True:
            sub_w = wmask[pos:] if wmask is not None else None
            ra = ref.access(addrs[pos:], miss_budget=budget, writes=sub_w)
            rb = arr.access(addrs[pos:], miss_budget=budget, writes=sub_w)
            assert ra.consumed == rb.consumed
            assert np.array_equal(ra.miss_mask, rb.miss_mask)
            assert ref.stats.__dict__ == arr.stats.__dict__
            pos += ra.consumed
            if pos >= len(addrs) or ra.consumed == 0:
                break
    for set_idx in range(cfg.n_sets):
        assert ref.lines_in_set(set_idx) == arr.lines_in_set(set_idx)
    assert ref.dirty_line_count() == arr.dirty_line_count()
