"""CacheStats.record() as the single mutation entry point (RPL401).

Regression tests for routing writeback/prefetch counts through
``record()`` instead of ad-hoc ``stats.writebacks += ...`` in the cache
models: the per-tag ledgers must stay consistent with the totals no
matter which events a chunk produced.
"""

import numpy as np

from repro.cache.base import CacheStats
from repro.cache.config import CacheConfig
from repro.cache.set_assoc import SetAssociativeCache


def addrs_of_lines(line_numbers, line_size=64):
    return np.asarray(line_numbers, dtype=np.uint64) * np.uint64(line_size)


class TestRecord:
    def test_record_moves_every_counter(self):
        stats = CacheStats()
        stats.record("app", 10, 3, writebacks=2, prefetches=1)
        assert stats.accesses == 10
        assert stats.misses == 3
        assert stats.writebacks == 2
        assert stats.prefetches == 1
        assert stats.accesses_by_tag == {"app": 10}
        assert stats.misses_by_tag == {"app": 3}

    def test_writebacks_default_to_zero(self):
        stats = CacheStats()
        stats.record("instr", 5, 1)
        assert stats.writebacks == 0
        assert stats.prefetches == 0

    def test_snapshot_carries_writebacks(self):
        stats = CacheStats()
        stats.record("app", 4, 2, writebacks=1, prefetches=3)
        snap = stats.snapshot()
        stats.record("app", 1, 1, writebacks=1)
        assert snap.writebacks == 1
        assert snap.prefetches == 3


class TestSetAssocAttribution:
    def test_per_tag_ledgers_match_totals_with_writebacks(self):
        cfg = CacheConfig(size=64 * 2 * 4, line_size=64, assoc=2)
        cache = SetAssociativeCache(cfg)
        n = 64
        addrs = addrs_of_lines(np.arange(n))
        cache.access(addrs, tag="app", writes=np.ones(n, dtype=bool))
        cache.access(addrs_of_lines([0, 8]), tag="instr")
        stats = cache.stats
        assert stats.writebacks > 0  # dirty evictions happened
        assert sum(stats.accesses_by_tag.values()) == stats.accesses
        assert sum(stats.misses_by_tag.values()) == stats.misses
        assert stats.accesses_by_tag["instr"] == 2
