"""Tests for the vectorised direct-mapped cache, including equivalence
with the sequential model (the key correctness property of the sort-based
algorithm)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.config import CacheConfig
from repro.cache.direct_mapped import DirectMappedCache
from repro.cache.set_assoc import SetAssociativeCache
from repro.errors import CacheConfigError


def cfg_dm(n_sets=64):
    return CacheConfig(size=64 * n_sets, line_size=64, assoc=1)


def addrs_of_lines(line_numbers, line_size=64):
    return np.asarray(line_numbers, dtype=np.uint64) * np.uint64(line_size)


class TestBasics:
    def test_rejects_assoc_gt_1(self):
        with pytest.raises(CacheConfigError):
            DirectMappedCache(CacheConfig(size=4096, assoc=2))

    def test_cold_then_hot(self):
        c = DirectMappedCache(cfg_dm())
        assert c.access(addrs_of_lines([0, 1, 2])).n_misses == 3
        assert c.access(addrs_of_lines([0, 1, 2])).n_misses == 0

    def test_conflict_within_chunk(self):
        c = DirectMappedCache(cfg_dm(n_sets=4))
        # lines 0 and 4 share set 0: miss, miss, miss, miss.
        res = c.access(addrs_of_lines([0, 4, 0, 4]))
        assert res.n_misses == 4

    def test_repeat_within_chunk_hits(self):
        c = DirectMappedCache(cfg_dm(n_sets=4))
        res = c.access(addrs_of_lines([7, 7, 7]))
        assert res.n_misses == 1

    def test_state_carries_across_chunks(self):
        c = DirectMappedCache(cfg_dm(n_sets=4))
        c.access(addrs_of_lines([1]))
        assert c.access(addrs_of_lines([1])).n_misses == 0
        c.access(addrs_of_lines([5]))  # evicts line 1 (same set)
        assert c.access(addrs_of_lines([1])).n_misses == 1

    def test_contents_and_reset(self):
        c = DirectMappedCache(cfg_dm())
        c.access(addrs_of_lines([0, 1]))
        assert c.contents_line_count() == 2
        assert c.contains_addr(64)
        c.reset()
        assert c.contents_line_count() == 0

    def test_empty_access(self):
        c = DirectMappedCache(cfg_dm())
        assert c.access(np.array([], dtype=np.uint64)).consumed == 0


class TestMissBudget:
    def test_budget_stops_at_crossing(self):
        c = DirectMappedCache(cfg_dm())
        stream = addrs_of_lines(np.arange(100))
        res = c.access(stream, miss_budget=5)
        assert res.consumed == 5
        assert res.n_misses == 5

    def test_snapshot_replay_preserves_state(self):
        """After a budget-limited access, the cache state must reflect only
        the consumed prefix (the rollback must be exact)."""
        cfg = cfg_dm(n_sets=8)
        budgeted = DirectMappedCache(cfg)
        reference = DirectMappedCache(cfg)
        stream = addrs_of_lines([0, 8, 1, 9, 2, 10])
        res = budgeted.access(stream, miss_budget=3)
        reference.access(stream[: res.consumed])
        assert np.array_equal(budgeted._tags, reference._tags)

    def test_resume_equals_unsplit(self):
        cfg = cfg_dm(n_sets=32)
        whole = DirectMappedCache(cfg)
        split = DirectMappedCache(cfg)
        rng = np.random.default_rng(1)
        stream = addrs_of_lines(rng.integers(0, 64, 2000))
        full = whole.access(stream)
        parts = []
        pos = 0
        while pos < len(stream):
            res = split.access(stream[pos:], miss_budget=13)
            parts.append(res.miss_mask)
            pos += res.consumed
        assert np.array_equal(full.miss_mask, np.concatenate(parts))


class TestEquivalence:
    """The vectorised model must agree exactly with the sequential
    1-way SetAssociativeCache on any reference stream."""

    def _check(self, line_stream, n_sets, chunk):
        cfg = CacheConfig(size=64 * n_sets, line_size=64, assoc=1)
        fast = DirectMappedCache(cfg)
        slow = SetAssociativeCache(cfg)
        addrs = addrs_of_lines(line_stream)
        for pos in range(0, len(addrs), chunk):
            a = fast.access(addrs[pos : pos + chunk]).miss_mask
            b = slow.access(addrs[pos : pos + chunk]).miss_mask
            assert np.array_equal(a, b)

    def test_random_stream(self):
        rng = np.random.default_rng(7)
        self._check(rng.integers(0, 256, 5000), n_sets=64, chunk=512)

    def test_adversarial_same_set(self):
        # Heavy duplicate sets within a chunk stress the sort-based logic.
        self._check([0, 64, 0, 64, 0, 0, 64, 128, 0] * 50, n_sets=64, chunk=64)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 63), min_size=1, max_size=400),
        st.sampled_from([1, 7, 64, 400]),
    )
    def test_property_equivalence(self, lines, chunk):
        self._check(lines, n_sets=16, chunk=chunk)
