"""Tests for write-back dirty tracking and the next-line prefetcher."""

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.set_assoc import SetAssociativeCache


def addrs_of_lines(line_numbers, line_size=64):
    return np.asarray(line_numbers, dtype=np.uint64) * np.uint64(line_size)


def tiny(assoc=2, n_sets=4, **kw):
    cfg = CacheConfig(size=64 * assoc * n_sets, line_size=64, assoc=assoc)
    return SetAssociativeCache(cfg, **kw)


class TestWriteBack:
    def test_write_marks_dirty(self):
        c = tiny()
        c.access(addrs_of_lines([0]), writes=np.array([True]))
        assert c.dirty_line_count() == 1

    def test_read_does_not_dirty(self):
        c = tiny()
        c.access(addrs_of_lines([0]), writes=np.array([False]))
        assert c.dirty_line_count() == 0

    def test_write_hit_dirties(self):
        c = tiny()
        c.access(addrs_of_lines([0]), writes=np.array([False]))
        c.access(addrs_of_lines([0]), writes=np.array([True]))
        assert c.dirty_line_count() == 1

    def test_evicting_dirty_line_counts_writeback(self):
        c = tiny(assoc=2, n_sets=4)
        # Fill set 0 with dirty lines 0, 4; then force eviction with 8.
        c.access(addrs_of_lines([0, 4]), writes=np.array([True, True]))
        c.access(addrs_of_lines([8]), writes=np.array([False]))
        assert c.stats.writebacks == 1
        assert c.dirty_line_count() == 1  # line 4 still resident & dirty

    def test_clean_eviction_no_writeback(self):
        c = tiny(assoc=2, n_sets=4)
        c.access(addrs_of_lines([0, 4, 8]))  # all reads
        assert c.stats.writebacks == 0

    def test_writeback_volume_streaming_stores(self):
        """Streaming stores through a small cache write back ~every line."""
        c = tiny(assoc=4, n_sets=16)  # 64 lines
        n = 1000
        c.access(addrs_of_lines(np.arange(n)), writes=np.ones(n, dtype=bool))
        assert c.stats.writebacks == n - 64  # all but the still-resident tail

    def test_reset_clears_dirty(self):
        c = tiny()
        c.access(addrs_of_lines([0]), writes=np.array([True]))
        c.reset()
        assert c.dirty_line_count() == 0

    def test_no_writes_arg_means_no_dirty_state(self):
        c = tiny()
        c.access(addrs_of_lines([0, 1, 2]))
        assert c.dirty_line_count() == 0


class TestPrefetch:
    def test_next_line_prefetched(self):
        c = tiny(assoc=2, n_sets=8, prefetch_next_line=True)
        c.access(addrs_of_lines([0]))
        assert c.stats.prefetches == 1
        # Line 1 was prefetched: touching it now hits.
        assert c.access(addrs_of_lines([1])).n_misses == 0

    def test_sequential_stream_mostly_hits_with_prefetch(self):
        on = tiny(assoc=4, n_sets=64, prefetch_next_line=True)
        off = tiny(assoc=4, n_sets=64, prefetch_next_line=False)
        stream = addrs_of_lines(np.arange(2000))
        hits_on = len(stream) - on.access(stream).n_misses
        hits_off = len(stream) - off.access(stream).n_misses
        assert hits_on > hits_off
        # Perfect next-line coverage on a pure sequential stream: every
        # second line is a prefetch hit.
        assert on.access(addrs_of_lines(np.arange(2000, 4000))).n_misses <= 1001

    def test_prefetch_does_not_count_as_miss(self):
        c = tiny(prefetch_next_line=True)
        res = c.access(addrs_of_lines([0]))
        assert res.n_misses == 1  # the demand miss only

    def test_prefetch_can_evict_dirty(self):
        c = tiny(assoc=1, n_sets=4, prefetch_next_line=True)
        # Dirty line 1 in set 1; then miss on line 4 (set 0) prefetches
        # line 5 (set 1), evicting dirty line 1.
        c.access(addrs_of_lines([1]), writes=np.array([True]))
        c.access(addrs_of_lines([4]))
        assert c.stats.writebacks == 1

    def test_rankings_survive_prefetch(self):
        """The profiling story holds under prefetching: attribution of the
        (fewer) remaining misses keeps the same object order."""
        from repro.cache.attribution import GroundTruth
        from repro.workloads.synthetic import SyntheticStreams

        wl = SyntheticStreams(
            {"A": (512 * 1024, 65), "B": (512 * 1024, 35)},
            rounds=6,
            interleaved=True,
            seed=5,
        )
        wl.prepare()
        cfg = CacheConfig(size=64 * 1024, assoc=4)
        cache = SetAssociativeCache(cfg, prefetch_next_line=True)
        gt = GroundTruth(wl.object_map)
        for block in wl.blocks():
            res = cache.access(block.addrs)
            gt.observe(block.addrs[res.miss_mask])
        prof = gt.profile()
        assert prof.rank_of("A") == 1
        assert prof.rank_of("B") == 2
