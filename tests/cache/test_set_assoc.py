"""Tests for the exact set-associative cache model."""

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.policies import ReplacementPolicy
from repro.cache.set_assoc import SetAssociativeCache


def addrs_of_lines(line_numbers, line_size=64):
    return np.asarray(line_numbers, dtype=np.uint64) * np.uint64(line_size)


def tiny_cache(assoc=2, n_sets=4, policy=ReplacementPolicy.LRU):
    cfg = CacheConfig(size=64 * assoc * n_sets, line_size=64, assoc=assoc, policy=policy)
    return SetAssociativeCache(cfg)


class TestHitMiss:
    def test_cold_misses(self):
        c = tiny_cache()
        res = c.access(addrs_of_lines([0, 1, 2, 3]))
        assert res.n_misses == 4

    def test_rereference_hits(self):
        c = tiny_cache()
        c.access(addrs_of_lines([0, 1]))
        res = c.access(addrs_of_lines([0, 1]))
        assert res.n_misses == 0

    def test_same_line_different_offset_hits(self):
        c = tiny_cache()
        c.access(np.array([0], dtype=np.uint64))
        res = c.access(np.array([8, 16, 63], dtype=np.uint64))
        assert res.n_misses == 0

    def test_lru_eviction(self):
        # 2-way set 0: lines 0, 4, 8 all map to set 0 (4 sets).
        c = tiny_cache(assoc=2, n_sets=4)
        c.access(addrs_of_lines([0, 4]))          # set 0 holds {0, 4}
        c.access(addrs_of_lines([0]))             # touch 0 -> LRU is 4
        c.access(addrs_of_lines([8]))             # evicts 4
        assert c.access(addrs_of_lines([0])).n_misses == 0
        assert c.access(addrs_of_lines([4])).n_misses == 1

    def test_fifo_ignores_hits(self):
        c = tiny_cache(assoc=2, n_sets=4, policy=ReplacementPolicy.FIFO)
        c.access(addrs_of_lines([0, 4]))
        c.access(addrs_of_lines([0]))             # hit; FIFO order unchanged
        c.access(addrs_of_lines([8]))             # evicts 0 (oldest inserted)
        assert c.access(addrs_of_lines([4])).n_misses == 0
        assert c.access(addrs_of_lines([0])).n_misses == 1

    def test_random_policy_deterministic_with_seed(self):
        cfg = CacheConfig(size=8 * 1024, assoc=4, policy=ReplacementPolicy.RANDOM)
        a = SetAssociativeCache(cfg, seed=3)
        b = SetAssociativeCache(cfg, seed=3)
        stream = addrs_of_lines(np.arange(4000) * 7 % 1024)
        assert np.array_equal(a.access(stream).miss_mask, b.access(stream).miss_mask)

    def test_working_set_bigger_than_cache_thrashes(self, small_cfg):
        c = SetAssociativeCache(small_cfg)
        stream = addrs_of_lines(np.arange(2 * small_cfg.n_lines))
        c.access(stream)
        res = c.access(stream)
        assert res.n_misses == len(stream)  # LRU streaming: zero reuse


class TestMissBudget:
    def test_budget_stops_exactly(self):
        c = tiny_cache()
        stream = addrs_of_lines(np.arange(100))
        res = c.access(stream, miss_budget=10)
        assert res.consumed == 10  # every access misses, so 10th ref = 10th miss
        assert res.n_misses == 10
        assert len(res.miss_mask) == 10

    def test_budget_with_hits_interleaved(self):
        c = tiny_cache(assoc=2, n_sets=4)
        c.access(addrs_of_lines([0]))
        # hit, miss, hit, miss, ... budget 2 -> stops at second miss.
        stream = addrs_of_lines([0, 1, 0, 2, 0, 3])
        res = c.access(stream, miss_budget=2)
        assert res.consumed == 4
        assert res.n_misses == 2

    def test_budget_larger_than_misses(self):
        c = tiny_cache()
        stream = addrs_of_lines([0, 1])
        res = c.access(stream, miss_budget=100)
        assert res.consumed == 2

    def test_resume_after_budget_is_seamless(self):
        """Split processing must equal unsplit processing."""
        cfg = CacheConfig(size=8 * 1024, assoc=4)
        whole = SetAssociativeCache(cfg)
        split = SetAssociativeCache(cfg)
        rng = np.random.default_rng(0)
        stream = addrs_of_lines(rng.integers(0, 512, 3000))
        full = whole.access(stream)
        masks = []
        pos = 0
        while pos < len(stream):
            res = split.access(stream[pos:], miss_budget=17)
            masks.append(res.miss_mask)
            pos += res.consumed
        assert np.array_equal(full.miss_mask, np.concatenate(masks))


class TestStatsAndState:
    def test_stats_by_tag(self):
        c = tiny_cache()
        c.access(addrs_of_lines([0, 1]), tag="app")
        c.access(addrs_of_lines([2]), tag="instr")
        assert c.stats.accesses_by_tag == {"app": 2, "instr": 1}
        assert c.stats.misses_by_tag == {"app": 2, "instr": 1}
        assert c.stats.miss_ratio == 1.0

    def test_reset_clears_contents_not_stats(self):
        c = tiny_cache()
        c.access(addrs_of_lines([0, 1]))
        c.reset()
        assert c.contents_line_count() == 0
        assert c.stats.accesses == 2
        assert c.access(addrs_of_lines([0])).n_misses == 1

    def test_contains_addr(self):
        c = tiny_cache()
        c.access(addrs_of_lines([5]))
        assert c.contains_addr(5 * 64)
        assert c.contains_addr(5 * 64 + 8)
        assert not c.contains_addr(6 * 64)

    def test_warm_fraction(self):
        c = tiny_cache(assoc=2, n_sets=4)
        assert c.warm_fraction() == 0.0
        c.access(addrs_of_lines([0, 1, 2, 3]))
        assert c.warm_fraction() == 0.5

    def test_empty_access(self):
        c = tiny_cache()
        res = c.access(np.array([], dtype=np.uint64))
        assert res.consumed == 0
        assert len(res.miss_mask) == 0

    def test_lines_in_set_order(self):
        c = tiny_cache(assoc=2, n_sets=4)
        c.access(addrs_of_lines([0, 4, 0]))
        assert c.lines_in_set(0) == [4, 0]  # MRU last


class TestReferenceModel:
    def test_against_naive_lru_model(self):
        """Exhaustive check against a dead-simple per-reference model."""
        cfg = CacheConfig(size=4096, line_size=64, assoc=2)  # 32 sets
        cache = SetAssociativeCache(cfg)
        rng = np.random.default_rng(42)
        lines = rng.integers(0, 128, 5000)
        got = cache.access(addrs_of_lines(lines)).miss_mask

        sets: dict[int, list[int]] = {}
        expected = []
        for line in lines:
            line = int(line)
            s = sets.setdefault(line % 32, [])
            if line in s:
                s.remove(line)
                s.append(line)
                expected.append(False)
            else:
                if len(s) >= 2:
                    s.pop(0)
                s.append(line)
                expected.append(True)
        assert np.array_equal(got, np.array(expected))
