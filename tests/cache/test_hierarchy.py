"""Tests for the two-level cache hierarchy extension."""

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.cache.hierarchy import TwoLevelCache
from repro.cache.set_assoc import SetAssociativeCache
from repro.errors import CacheConfigError


def addrs_of_lines(line_numbers, line_size=64):
    return np.asarray(line_numbers, dtype=np.uint64) * np.uint64(line_size)


def make_hierarchy(l1_kb=4, l2_kb=64):
    return TwoLevelCache(
        CacheConfig(size=l1_kb * 1024, assoc=2),
        CacheConfig(size=l2_kb * 1024, assoc=4),
    )


class TestValidation:
    def test_l1_must_be_smaller(self):
        with pytest.raises(CacheConfigError):
            TwoLevelCache(CacheConfig(size=64 * 1024), CacheConfig(size=64 * 1024))

    def test_line_sizes_must_match(self):
        with pytest.raises(CacheConfigError):
            TwoLevelCache(
                CacheConfig(size=4 * 1024, line_size=32),
                CacheConfig(size=64 * 1024, line_size=64),
            )


class TestFiltering:
    def test_cold_misses_at_both_levels(self):
        h = make_hierarchy()
        res = h.access(addrs_of_lines([0, 1, 2]))
        assert res.n_misses == 3
        assert h.l1_stats.misses == 3
        assert h.stats.misses == 3

    def test_l1_hit_invisible_to_l2(self):
        h = make_hierarchy()
        h.access(addrs_of_lines([0]))
        res = h.access(addrs_of_lines([0]))
        assert res.n_misses == 0
        assert h.l1_stats.misses == 1  # only the cold fill
        assert h.stats.accesses == 2   # both refs traverse the model

    def test_l2_catches_l1_capacity_misses(self):
        """A working set bigger than L1 but inside L2: second sweep misses
        L1 (capacity) but hits L2 — zero memory misses."""
        h = make_hierarchy(l1_kb=4, l2_kb=64)
        lines = np.arange(256)  # 16 KiB: 4x L1, 1/4 of L2
        h.access(addrs_of_lines(lines))
        res = h.access(addrs_of_lines(lines))
        assert res.n_misses == 0           # L2 absorbed everything
        assert h.l1_stats.misses == 512    # both sweeps missed tiny L1

    def test_l2_misses_when_exceeding_both(self):
        h = make_hierarchy(l1_kb=4, l2_kb=64)
        lines = np.arange(4096)  # 256 KiB: 4x L2
        h.access(addrs_of_lines(lines))
        res = h.access(addrs_of_lines(lines))
        assert res.n_misses == len(lines)  # LRU streaming thrashes L2 too

    def test_l2_equivalent_to_single_level_when_l1_tiny_stream(self):
        """For a no-reuse stream, L2 miss classification must equal a
        standalone cache of the same geometry."""
        cfg2 = CacheConfig(size=64 * 1024, assoc=4)
        h = TwoLevelCache(CacheConfig(size=4 * 1024, assoc=2), cfg2)
        solo = SetAssociativeCache(cfg2)
        rng = np.random.default_rng(0)
        stream = addrs_of_lines(rng.integers(0, 4096, 20000))
        a = h.access(stream).miss_mask
        b = solo.access(stream).miss_mask
        # Not bit-identical in general (L1 filters re-references), but for
        # this stream total L2 traffic must be close; compare miss counts.
        assert abs(int(a.sum()) - int(b.sum())) / int(b.sum()) < 0.25


class TestBudget:
    def test_budget_counts_l2_misses(self):
        h = make_hierarchy()
        stream = addrs_of_lines(np.arange(100))
        res = h.access(stream, miss_budget=7)
        assert res.consumed == 7
        assert res.n_misses == 7

    def test_budget_skips_l1_hits(self):
        h = make_hierarchy()
        h.access(addrs_of_lines([0]))
        # hit, miss, hit, miss: budget 1 stops at the first L2 miss.
        stream = addrs_of_lines([0, 50, 0, 60])
        res = h.access(stream, miss_budget=1)
        assert res.consumed == 2

    def test_resume_equals_unsplit(self):
        whole = make_hierarchy()
        split = make_hierarchy()
        rng = np.random.default_rng(3)
        stream = addrs_of_lines(rng.integers(0, 2048, 5000))
        full = whole.access(stream)
        parts = []
        pos = 0
        while pos < len(stream):
            res = split.access(stream[pos:], miss_budget=23)
            parts.append(res.miss_mask)
            pos += res.consumed
        assert np.array_equal(full.miss_mask, np.concatenate(parts))


class TestEndToEnd:
    def test_profiling_through_hierarchy(self):
        """The sampling profiler still ranks objects correctly when fed
        L2 misses instead of single-level misses."""
        from repro.sim.engine import Simulator
        from repro.workloads.synthetic import SyntheticStreams

        class HierarchySimulator(Simulator):
            pass

        sim = Simulator(CacheConfig(size=64 * 1024, assoc=4), seed=2)
        # Swap the cache factory by monkeypatching make_cache usage is
        # invasive; instead drive the hierarchy directly with the engine's
        # building blocks: run the same workload through both models and
        # compare ground-truth-style attribution of their miss streams.
        wl = SyntheticStreams(
            {"A": (512 * 1024, 70), "B": (512 * 1024, 30)},
            rounds=6,
            interleaved=True,
            seed=2,
        )
        wl.prepare()
        h = make_hierarchy(l1_kb=8, l2_kb=64)
        from repro.cache.attribution import GroundTruth

        gt = GroundTruth(wl.object_map)
        for block in wl.blocks():
            res = h.access(block.addrs)
            gt.observe(block.addrs[res.miss_mask])
        prof = gt.profile()
        assert prof.rank_of("A") == 1
        assert prof.share_of("A") == pytest.approx(0.7, abs=0.05)


class TestStatsConsistency:
    """L1/L2 tag accounting must stay in lockstep (stats snapshot/merge).

    Every reference the hierarchy consumes is recorded at BOTH levels
    under the same tag, so per-tag access totals can never drift between
    ``l1_stats`` and ``stats`` — including when a miss budget cuts a
    chunk short and the L1 model is rolled back and replayed.
    """

    def drive(self, h, budget=None):
        rng = np.random.default_rng(7)
        for k in range(8):
            stream = addrs_of_lines(rng.integers(0, 2048, 1500))
            tag = "app" if k % 2 == 0 else "instr"
            pos = 0
            while pos < len(stream):
                res = h.access(stream[pos:], miss_budget=budget, tag=tag)
                pos += res.consumed

    def assert_consistent(self, h):
        assert h.l1_stats.accesses == h.stats.accesses
        assert h.l1_stats.accesses_by_tag == h.stats.accesses_by_tag
        assert h.stats.misses <= h.l1_stats.misses  # L1 filters L2 traffic
        for tag, l2_misses in h.stats.misses_by_tag.items():
            assert l2_misses <= h.l1_stats.misses_by_tag[tag]

    def test_tag_totals_agree_unbudgeted(self):
        h = make_hierarchy()
        self.drive(h)
        self.assert_consistent(h)

    def test_tag_totals_agree_with_budget_cuts(self):
        h = make_hierarchy()
        self.drive(h, budget=13)
        self.assert_consistent(h)

    def test_combined_stats_merges_levels(self):
        h = make_hierarchy()
        self.drive(h, budget=31)
        combined = h.combined_stats()
        assert combined.accesses == h.l1_stats.accesses + h.stats.accesses
        assert combined.misses == h.l1_stats.misses + h.stats.misses
        for tag in h.stats.accesses_by_tag:
            assert combined.accesses_by_tag[tag] == (
                h.l1_stats.accesses_by_tag[tag] + h.stats.accesses_by_tag[tag]
            )
        # combined_stats must be a snapshot: mutating it leaves the
        # hierarchy's own counters alone.
        before = h.l1_stats.accesses
        combined.accesses += 1
        combined.accesses_by_tag["app"] += 1
        assert h.l1_stats.accesses == before
