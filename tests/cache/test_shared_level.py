"""Shared-level ledger identities under multiple writers.

The multi-core conservation contract: the shared leaf's aggregate
:class:`CacheStats` equals the element-wise sum of every port's ledger
(cores commit sequentially, so each leaf commit belongs to exactly one
port), and every port miss is classified exactly one way (self vs
contention). A hypothesis sweep proves it over random interleavings; the
injected-fault tests prove the ``REPRO_SANITIZE=1`` check actually fires
when a multi-core commit breaks either identity.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import sanitize
from repro.cache import CacheConfig, SetAssociativeCache
from repro.cache.components import SharedCacheLevel
from repro.errors import CacheConfigError
from repro.sanitize import SanitizerError
from repro.sanitize.ledger import check_component

pytestmark = pytest.mark.multicore

CFG = CacheConfig(size=4 * 1024, line_size=64, assoc=2)


def shared_with_ports(n_cores: int, seed: int = 11):
    shared = SharedCacheLevel(SetAssociativeCache(CFG, seed=seed))
    ports = [
        shared.port(i, SetAssociativeCache(CFG, seed=seed))
        for i in range(n_cores)
    ]
    return shared, ports


# One interleaving = a sequence of (core, tag, line numbers) chunks.
CHUNKS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.sampled_from(["app", "instr"]),
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=24),
    ),
    min_size=1,
    max_size=40,
)


class TestConservationProperty:
    @settings(max_examples=40, deadline=None)
    @given(chunks=CHUNKS)
    def test_port_ledgers_sum_to_aggregate(self, chunks):
        shared, ports = shared_with_ports(3)
        for core, tag, lines in chunks:
            addrs = np.array(lines, dtype=np.uint64) * np.uint64(CFG.line_size)
            ports[core].access(addrs, tag=tag)
        for counter in ("accesses", "misses"):
            assert getattr(shared.stats, counter) == sum(
                getattr(p.stats, counter) for p in ports
            )
        for attr in ("accesses_by_tag", "misses_by_tag"):
            agg = getattr(shared.stats, attr)
            tags = set(agg).union(*(getattr(p.stats, attr) for p in ports))
            for tag in tags:
                assert agg.get(tag, 0) == sum(
                    getattr(p.stats, attr).get(tag, 0) for p in ports
                )
        for port in ports:
            assert port.contention.classified_misses == port.stats.misses
            # The full sanitizer walk agrees.
            check_component(port, f"c{port.core_id}")


@pytest.fixture
def sanitized():
    sanitize.activate()
    yield
    sanitize.deactivate()


class TestInjectedFaults:
    def test_phantom_leaf_commit_breaks_aggregate_sum(self, sanitized):
        shared, ports = shared_with_ports(2)
        addrs = np.arange(8, dtype=np.uint64) * np.uint64(64)
        ports[0].access(addrs)
        # A commit landing in the leaf without going through any port —
        # the multi-writer bug the aggregate-sum identity exists to catch.
        shared.leaf.stats.record("app", 4, 1)
        with pytest.raises(SanitizerError, match="aggregate"):
            ports[1].access(addrs)

    def test_dropped_classification_breaks_conservation(self, sanitized):
        shared, ports = shared_with_ports(2)
        addrs = np.arange(8, dtype=np.uint64) * np.uint64(64)
        ports[0].access(addrs)
        ports[0].contention.self_misses -= 1
        with pytest.raises(SanitizerError, match="classif"):
            ports[0].access(addrs)

    def test_conservation_check_counted(self, sanitized):
        _, ports = shared_with_ports(1)
        sanitize.reset_checks()
        ports[0].access(np.arange(4, dtype=np.uint64) * np.uint64(64))
        assert sanitize.checks_run().get("ledger.shared_port", 0) >= 1


class TestPortValidation:
    def test_shadow_geometry_must_match_leaf(self):
        shared = SharedCacheLevel(SetAssociativeCache(CFG, seed=1))
        other = CacheConfig(size=8 * 1024, line_size=64, assoc=2)
        with pytest.raises(CacheConfigError, match="shadow"):
            shared.port(0, SetAssociativeCache(other, seed=1))

    def test_scalar_path_refuses_decoration(self):
        _, ports = shared_with_ports(1)
        with pytest.raises(CacheConfigError, match="single-core"):
            ports[0].access_line(0)
