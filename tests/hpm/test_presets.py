"""Tests for the PMU capability catalog (paper section 1 / related work)."""

import pytest

from repro.errors import CounterError
from repro.hpm.presets import PRESETS, get_preset, technique_support


class TestPresets:
    def test_all_paper_processors_present(self):
        for key in ("r10000", "alpha-21264", "ultrasparc", "itanium"):
            assert key in PRESETS

    def test_unknown_rejected(self):
        with pytest.raises(CounterError):
            get_preset("pentium-pro")

    def test_everyone_counts_misses(self):
        # "All of these can provide cache miss information."
        for preset in PRESETS.values():
            assert preset.counts_cache_misses


class TestCapabilities:
    def test_itanium_supports_sampling(self):
        # "The Itanium also provides a way to determine the address of the
        # last cache miss."
        assert get_preset("itanium").supports_sampling()

    def test_r10000_cannot_sample_addresses(self):
        # Overflow interrupts yes, miss address no.
        preset = get_preset("r10000")
        assert preset.overflow_interrupt
        assert not preset.supports_sampling()

    def test_ultrasparc_no_overflow(self):
        assert not get_preset("ultrasparc").supports_sampling()

    def test_itanium_search_needs_multiplexing(self):
        # One conditional counter: "multiple counters ... could be
        # simulated by timesharing the single conditional counter".
        preset = get_preset("itanium")
        assert not preset.supports_search(2)
        assert preset.supports_search_multiplexed()

    def test_paper_ideal_runs_everything(self):
        preset = get_preset("paper-ideal")
        assert preset.supports_sampling()
        assert preset.supports_search(10)


class TestTechniqueSupport:
    def test_itanium(self):
        support = technique_support("itanium", n=10)
        assert support == {"sampling": "native", "search": "emulated"}

    def test_r10000(self):
        support = technique_support("r10000")
        assert support == {"sampling": "unsupported", "search": "unsupported"}

    def test_paper_ideal(self):
        support = technique_support("paper-ideal", n=10)
        assert support == {"sampling": "native", "search": "native"}

    def test_accepts_preset_object(self):
        support = technique_support(get_preset("ultrasparc"))
        assert support["sampling"] == "unsupported"
