"""Tests for miss counters and the region counter bank."""

import numpy as np
import pytest

from repro.errors import CounterError
from repro.hpm.counters import MissCounter, RegionCounterBank
from repro.util.intervals import Interval


class TestMissCounter:
    def test_counts_qualified_misses(self):
        c = MissCounter()
        c.program_region(Interval(0, 100))
        inc = c.observe(np.array([10, 50, 150], dtype=np.uint64))
        assert inc == 2
        assert c.value == 2

    def test_unqualified_counts_all(self):
        c = MissCounter()
        c.observe(np.array([1, 2, 3], dtype=np.uint64))
        assert c.value == 3

    def test_disabled_ignores(self):
        c = MissCounter()
        c.enabled = False
        c.observe(np.array([1], dtype=np.uint64))
        assert c.value == 0

    def test_read_and_clear(self):
        c = MissCounter()
        c.observe(np.array([1, 2], dtype=np.uint64))
        assert c.read_and_clear() == 2
        assert c.value == 0

    def test_overflow_arming(self):
        c = MissCounter()
        c.arm_overflow(5)
        assert c.armed
        assert c.misses_until_overflow() == 5
        c.observe(np.arange(3, dtype=np.uint64))
        assert c.misses_until_overflow() == 2
        assert not c.overflowed
        c.observe(np.arange(2, dtype=np.uint64))
        assert c.overflowed
        assert c.misses_until_overflow() == 0

    def test_overflow_threshold_relative_to_current(self):
        c = MissCounter()
        c.observe(np.arange(10, dtype=np.uint64))
        c.arm_overflow(5)
        assert c.misses_until_overflow() == 5

    def test_disarm(self):
        c = MissCounter()
        c.arm_overflow(5)
        c.disarm()
        assert not c.armed
        assert c.misses_until_overflow() is None

    def test_bad_threshold(self):
        c = MissCounter()
        with pytest.raises(CounterError):
            c.arm_overflow(0)


class TestRegionCounterBank:
    def test_program_and_observe(self):
        bank = RegionCounterBank(3)
        bank.program([Interval(0, 100), Interval(100, 200)])
        addrs = np.array([50, 150, 150, 500], dtype=np.uint64)
        bank.observe(addrs)
        assert bank.read_all() == [1, 2]

    def test_extra_counters_disabled(self):
        bank = RegionCounterBank(3)
        bank.program([Interval(0, 10)])
        assert bank.read_all() == [0]
        assert not bank[1].enabled
        assert not bank[2].enabled

    def test_too_many_regions_rejected(self):
        bank = RegionCounterBank(2)
        with pytest.raises(CounterError):
            bank.program([Interval(0, 1), Interval(1, 2), Interval(2, 3)])

    def test_reprogram_clears(self):
        bank = RegionCounterBank(2)
        bank.program([Interval(0, 100)])
        bank.observe(np.array([5], dtype=np.uint64))
        bank.program([Interval(0, 100)])
        assert bank.read_all() == [0]

    def test_clear_all(self):
        bank = RegionCounterBank(2)
        bank.program([Interval(0, 100), Interval(100, 200)])
        bank.observe(np.array([5, 150], dtype=np.uint64))
        bank.clear_all()
        assert bank.read_all() == [0, 0]

    def test_zero_counters_rejected(self):
        with pytest.raises(CounterError):
            RegionCounterBank(0)

    def test_counts_match_scalar_filter(self):
        bank = RegionCounterBank(4)
        regions = [Interval(i * 1000, (i + 1) * 1000) for i in range(4)]
        bank.program(regions)
        rng = np.random.default_rng(5)
        addrs = rng.integers(0, 5000, 2000).astype(np.uint64)
        bank.observe(addrs)
        got = bank.read_all()
        for region, count in zip(regions, got):
            expected = sum(1 for a in addrs if region.lo <= a < region.hi)
            assert count == expected
