"""Tests for the PerformanceMonitor facade."""

import numpy as np

from repro.hpm.monitor import PerformanceMonitor
from repro.hpm.multiplex import MultiplexedRegionBank
from repro.util.intervals import Interval


class TestMonitor:
    def test_observe_updates_all_resources(self):
        mon = PerformanceMonitor(n_region_counters=2)
        mon.regions.program([Interval(0, 100)])
        mon.overflow_counter.arm_overflow(10)
        addrs = np.array([50, 150, 70], dtype=np.uint64)
        mon.observe(addrs)
        assert mon.global_counter.value == 3
        assert mon.regions.read_all() == [2]
        assert mon.last_miss_addr == 70
        assert mon.misses_until_overflow() == 7
        assert mon.total_misses_observed == 3

    def test_overflow_pending(self):
        mon = PerformanceMonitor(1)
        mon.overflow_counter.arm_overflow(2)
        mon.observe(np.array([1, 2], dtype=np.uint64))
        assert mon.overflow_pending

    def test_disarmed_budget_none(self):
        mon = PerformanceMonitor(1)
        assert mon.misses_until_overflow() is None

    def test_empty_observe_keeps_last_addr(self):
        mon = PerformanceMonitor(1)
        mon.observe(np.array([42], dtype=np.uint64))
        mon.observe(np.array([], dtype=np.uint64))
        assert mon.last_miss_addr == 42

    def test_multiplexed_bank_selected(self):
        mon = PerformanceMonitor(4, multiplexed=True)
        assert isinstance(mon.regions, MultiplexedRegionBank)
