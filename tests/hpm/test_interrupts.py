"""Tests for the interrupt cost model and log."""

from repro.hpm.interrupts import (
    CostModel,
    InterruptKind,
    InterruptLog,
    InterruptRecord,
)


class TestCostModel:
    def test_paper_delivery_cost(self):
        # Section 3.3: ~50us on a 175MHz Octane = 8,800 cycles.
        assert CostModel().interrupt_delivery_cycles == 8_800

    def test_sampler_cost_in_paper_band(self):
        """Total per sampling interrupt (delivery + handler) must land near
        the paper's ~9,000 cycles for typical map depths."""
        cm = CostModel()
        total = cm.interrupt_delivery_cycles + cm.sampler_handler_cycles(map_probes=5)
        assert 8_900 <= total <= 10_000

    def test_search_cost_in_paper_band(self):
        """Per search iteration, the paper reports 26,000-64,000 cycles."""
        cm = CostModel()
        typical = cm.interrupt_delivery_cycles + cm.search_handler_cycles(
            queue_ops=25, splits=5, boundary_scans=20, counter_io=21
        )
        assert 26_000 <= typical <= 64_000

    def test_handler_costs_monotone_in_work(self):
        cm = CostModel()
        assert cm.sampler_handler_cycles(10) > cm.sampler_handler_cycles(1)
        assert cm.search_handler_cycles(9, 9, 9, 9) > cm.search_handler_cycles(1, 1, 1, 1)


class TestInterruptLog:
    def _record(self, cycle=0, handler=100):
        return InterruptRecord(
            kind=InterruptKind.MISS_OVERFLOW,
            cycle=cycle,
            handler_cycles=handler,
            delivery_cycles=8_800,
        )

    def test_totals(self):
        log = InterruptLog()
        log.append(self._record(handler=100))
        log.append(self._record(handler=200))
        assert len(log) == 2
        assert log.total_handler_cycles == 300
        assert log.total_cycles == 300 + 2 * 8_800

    def test_mean(self):
        log = InterruptLog()
        assert log.mean_cycles() == 0.0
        log.append(self._record(handler=200))
        assert log.mean_cycles() == 9_000

    def test_per_billion(self):
        log = InterruptLog()
        for _ in range(4):
            log.append(self._record())
        assert log.per_billion_cycles(2_000_000_000) == 2.0
        assert log.per_billion_cycles(0) == 0.0

    def test_record_total(self):
        rec = self._record(handler=150)
        assert rec.total_cycles == 8_950
