"""Tests for base/bounds registers."""

import numpy as np

from repro.hpm.registers import BaseBoundsRegister
from repro.util.intervals import Interval


class TestBaseBounds:
    def test_unprogrammed_matches_everything(self):
        reg = BaseBoundsRegister()
        assert reg.matches(0)
        assert reg.matches(1 << 40)
        addrs = np.array([1, 2, 3], dtype=np.uint64)
        assert reg.match_count(addrs) == 3
        assert reg.match_mask(addrs).all()

    def test_region_half_open(self):
        reg = BaseBoundsRegister(Interval(100, 200))
        assert reg.matches(100)
        assert reg.matches(199)
        assert not reg.matches(200)
        assert not reg.matches(99)

    def test_match_count_vectorised(self):
        reg = BaseBoundsRegister(Interval(100, 200))
        addrs = np.array([50, 100, 150, 199, 200, 250], dtype=np.uint64)
        assert reg.match_count(addrs) == 3
        assert reg.match_mask(addrs).tolist() == [False, True, True, True, False, False]

    def test_reprogram_and_clear(self):
        reg = BaseBoundsRegister(Interval(0, 10))
        reg.program(Interval(20, 30))
        assert reg.matches(25)
        assert not reg.matches(5)
        reg.clear()
        assert reg.region is None
        assert reg.matches(5)

    def test_mask_matches_scalar(self):
        reg = BaseBoundsRegister(Interval(64, 4096))
        addrs = np.arange(0, 8192, 128, dtype=np.uint64)
        mask = reg.match_mask(addrs)
        for addr, bit in zip(addrs, mask):
            assert bit == reg.matches(int(addr))
