"""Tests for the time-multiplexed counter bank."""

import numpy as np
import pytest

from repro.hpm.multiplex import MultiplexedRegionBank
from repro.util.intervals import Interval


class TestMultiplexedBank:
    def test_only_active_region_counts_raw(self):
        bank = MultiplexedRegionBank(2, slice_misses=4)
        bank.program([Interval(0, 100), Interval(100, 200)])
        # First 4 misses observed while region 0 active; all land region 1.
        bank.observe(np.array([150, 150, 150, 150], dtype=np.uint64))
        assert bank.counters[0].value == 0  # region 0 saw nothing in its window
        assert bank.counters[1].value == 0  # region 1 wasn't active yet

    def test_rotation(self):
        bank = MultiplexedRegionBank(2, slice_misses=2)
        bank.program([Interval(0, 100), Interval(100, 200)])
        # 2 misses -> slice ends -> rotate to region 1 -> next 2 misses counted.
        bank.observe(np.array([150, 150, 150, 150], dtype=np.uint64))
        assert bank.counters[1].value == 2

    def test_extrapolation_on_uniform_stream(self):
        """A stationary stream must extrapolate close to the true counts."""
        bank = MultiplexedRegionBank(2, slice_misses=64)
        bank.program([Interval(0, 1000), Interval(1000, 2000)])
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 2000, 50_000).astype(np.uint64)
        bank.observe(addrs)
        got = bank.read_all()
        true = [
            int(((addrs >= 0) & (addrs < 1000)).sum()),
            int(((addrs >= 1000) & (addrs < 2000)).sum()),
        ]
        for estimate, actual in zip(got, true):
            assert abs(estimate - actual) / actual < 0.10

    def test_read_all_zero_when_unobserved(self):
        bank = MultiplexedRegionBank(3, slice_misses=1000)
        bank.program([Interval(0, 10), Interval(10, 20), Interval(20, 30)])
        # Only 10 misses: region 0's slice never completes, others never active.
        bank.observe(np.full(10, 5, dtype=np.uint64))
        got = bank.read_all()
        assert got[0] > 0
        assert got[1] == 0 and got[2] == 0

    def test_read_all_more_regions_than_slices(self):
        """Regression: more programmed regions than elapsed slices.

        With 6 regions but only enough misses for two slices, regions
        2..5 never get an observation window (``slices_observed == 0``).
        ``read_all`` must still return one entry per region — the raw
        (zero) count — instead of dividing by zero or fabricating a
        scaled estimate.
        """
        bank = MultiplexedRegionBank(6, slice_misses=8)
        bank.program([Interval(i * 10, i * 10 + 10) for i in range(6)])
        # 16 misses = exactly 2 slices: regions 0 and 1 observed, rest never.
        bank.observe(np.full(16, 5, dtype=np.uint64))
        got = bank.read_all()
        assert len(got) == 6
        assert got[0] >= 0 and got[1] >= 0
        assert got[2:] == [0, 0, 0, 0]

    def test_read_all_single_partial_slice(self):
        """Fewer misses than one slice: only region 0 ever active; the
        remaining regions report 0, not an extrapolation artifact."""
        bank = MultiplexedRegionBank(4, slice_misses=100)
        bank.program([Interval(0, 10)] + [Interval(10, 20)] * 3)
        bank.observe(np.full(7, 5, dtype=np.uint64))
        got = bank.read_all()
        assert len(got) == 4
        assert got[0] == 7  # raw count scaled by 7/7 == itself
        assert got[1:] == [0, 0, 0]

    def test_bad_slice(self):
        with pytest.raises(ValueError):
            MultiplexedRegionBank(2, slice_misses=0)

    def test_empty_observe(self):
        bank = MultiplexedRegionBank(2)
        bank.program([Interval(0, 10), Interval(10, 20)])
        bank.observe(np.array([], dtype=np.uint64))
        assert bank.read_all() == [0, 0]
