"""Injected-fault tests: every sanitizer check must actually fire.

Each test corrupts one invariant the sanitizer guards — ledger
conservation, decorator chain identities, pipeline level identities,
RNG draw accounting, snapshot pickle fidelity — and asserts the
corresponding check raises :class:`SanitizerError` with a message
naming the broken identity. A sanitizer that cannot detect its own
injected fault is decoration, not defence.
"""

import numpy as np
import pytest

from repro import sanitize
from repro.cache import (
    CacheConfig,
    ReplacementPolicy,
    SetAssociativeCache,
    TwoLevelCache,
    make_cache,
    wrap_mechanisms,
)
from repro.core.sampling import SamplingProfiler
from repro.sanitize import SanitizerError
from repro.sanitize.ledger import check_component, check_stats
from repro.sanitize.rng import verify_cache_rng, verify_kernel_rng
from repro.sanitize.snapshot import snapshot_canary
from repro.sim.engine import Simulator
from repro.sim.session import SimulationSession
from repro.workloads.synthetic import SyntheticStreams

CFG = CacheConfig(size=4096, line_size=64, assoc=2)


def stream(n=600, span=200, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, span, size=n).astype(np.uint64) * np.uint64(64)


@pytest.fixture
def active():
    sanitize.reset_checks()
    sanitize.activate()
    yield sanitize
    sanitize.deactivate()
    sanitize.reset_checks()


class TestToggle:
    def test_activate_deactivate(self):
        sanitize.activate()
        assert sanitize.is_active()
        sanitize.deactivate()
        assert not sanitize.is_active()

    def test_check_counters(self, active):
        sanitize.count_check("demo")
        sanitize.count_check("demo")
        assert sanitize.checks_run()["demo"] == 2
        sanitize.reset_checks()
        assert sanitize.checks_run() == {}


class TestLedgerConservation:
    def test_clean_cache_passes(self):
        cache = SetAssociativeCache(CFG, seed=1)
        cache.access(stream())
        check_component(cache)

    def test_corrupt_total_misses_fires(self):
        cache = SetAssociativeCache(CFG, seed=1)
        cache.access(stream())
        cache.stats.misses += 7  # bypasses CacheStats.record
        with pytest.raises(SanitizerError, match="per-tag sum"):
            check_stats(cache.stats)

    def test_corrupt_tag_decomposition_fires(self):
        cache = SetAssociativeCache(CFG, seed=1)
        cache.access(stream())
        cache.stats.accesses_by_tag["app"] -= 3
        with pytest.raises(SanitizerError, match="accesses total"):
            check_stats(cache.stats)

    def test_negative_writebacks_fire(self):
        cache = SetAssociativeCache(CFG, seed=1)
        cache.access(stream())
        cache.stats.writebacks = -1
        with pytest.raises(SanitizerError, match="negative writebacks"):
            check_stats(cache.stats)


class TestChainIdentity:
    def _decorated(self):
        base = SetAssociativeCache(CFG, seed=1, backend="reference")
        vc = wrap_mechanisms(base, "vc")
        vc.access(stream())
        return vc

    def test_clean_stack_passes(self):
        check_component(self._decorated())

    def test_corrupt_inner_accesses_fires(self):
        vc = self._decorated()
        vc.inner.stats.accesses += 5
        vc.inner.stats.accesses_by_tag["app"] += 5  # keep inner conserved
        with pytest.raises(SanitizerError, match="inner component recorded"):
            check_component(vc)

    def test_corrupt_probe_count_fires(self):
        vc = self._decorated()
        vc.stats.mechanism["vc_probes"] += 1
        with pytest.raises(SanitizerError, match="vc_probes"):
            check_component(vc)


class TestPipelineIdentity:
    def _hierarchy(self):
        two = TwoLevelCache(
            CacheConfig(size=1024, line_size=64, assoc=2), CFG, seed=1
        )
        two.access(stream())
        return two

    def test_clean_hierarchy_passes(self):
        check_component(self._hierarchy())

    def test_level_miss_inflation_fires(self):
        two = self._hierarchy()
        # An L2 recording more misses than L1 feeds it "created"
        # references out of nothing.
        extra = two.levels[0].stats.misses - two.levels[1].stats.misses + 1
        two.levels[1].stats.misses += extra
        two.levels[1].stats.misses_by_tag["app"] += extra
        with pytest.raises(SanitizerError, match="cannot create references"):
            check_component(two)

    def test_detached_shared_ledger_fires(self):
        import copy

        two = self._hierarchy()
        two.stats = copy.deepcopy(two.stats)  # breaks the identity contract
        with pytest.raises(SanitizerError, match="shared-ledger"):
            check_component(two)


class TestRngReplay:
    def _random_cache(self):
        cfg = CacheConfig(
            size=4096, line_size=64, assoc=4, policy=ReplacementPolicy.RANDOM
        )
        cache = make_cache(cfg, seed=9)
        cache.access(stream(n=2000, span=800))
        return cache

    def test_clean_replay_passes(self):
        cache = self._random_cache()
        verify_cache_rng(cache)
        assert cache._kernel._rand_draws > 0  # the check was not vacuous

    def test_corrupt_draw_count_fires(self):
        cache = self._random_cache()
        cache._kernel._rand_draws += 1
        with pytest.raises(SanitizerError, match="replay"):
            verify_cache_rng(cache)

    def test_unaccounted_draw_fires(self):
        cache = self._random_cache()
        cache._kernel._rng.integers(0, 4, size=8)  # draw behind the counter
        with pytest.raises(SanitizerError, match="replay"):
            verify_kernel_rng(cache._kernel)

    def test_unaccounted_kernel_is_skipped(self):
        class Plain:
            pass

        verify_kernel_rng(Plain())  # no _seed/_rand_draws: silently skipped


class _DriftingInt(int):
    """Pickles to a *different* int — a lossy ``__reduce__`` stand-in."""

    def __reduce__(self):
        return (int, (int(self) + 1,))


class TestSnapshotCanary:
    def _session(self):
        workload = SyntheticStreams(
            {"A": (64 * 1024, 100)}, rounds=2, lines_per_round=1500, seed=3
        )
        sim = Simulator(CacheConfig(size=16 * 1024, assoc=2), seed=5)
        session = sim.start_session(workload, tool=SamplingProfiler(period=701))
        session.step()
        return session

    def test_clean_snapshot_passes(self):
        snapshot_canary(self._session().snapshot())

    def test_lossy_scalar_fires(self):
        snap = self._session().snapshot()
        snap.blocks_fetched = _DriftingInt(snap.blocks_fetched)
        with pytest.raises(SanitizerError, match="blocks_fetched"):
            snapshot_canary(snap)

    def test_unpicklable_snapshot_fires(self):
        snap = self._session().snapshot()
        snap.workload_name = lambda: None  # pickle cannot serialise this
        with pytest.raises(SanitizerError, match="pickle roundtrip"):
            snapshot_canary(snap)


class TestEndToEndHooks:
    """The REPRO_SANITIZE gate actually wires checks into hot paths."""

    def test_access_runs_ledger_checks_when_active(self, active):
        cache = SetAssociativeCache(CFG, seed=1)
        cache.access(stream())
        assert sanitize.checks_run()["ledger.conservation"] > 0

    def test_inactive_mode_runs_no_checks(self):
        sanitize.deactivate()
        sanitize.reset_checks()
        cache = SetAssociativeCache(CFG, seed=1)
        cache.access(stream())
        assert sanitize.checks_run() == {}

    def test_corrupted_ledger_caught_at_next_commit(self, active):
        cache = SetAssociativeCache(CFG, seed=1)
        cache.access(stream())
        cache.stats.misses += 1
        with pytest.raises(SanitizerError):
            cache.access(stream(seed=1))

    def test_snapshot_and_restore_run_canary_and_replay(self, active):
        workload = SyntheticStreams(
            {"A": (64 * 1024, 100)}, rounds=2, lines_per_round=1500, seed=3
        )
        sim = Simulator(CacheConfig(size=16 * 1024, assoc=2), seed=5)
        session = sim.start_session(workload, tool=SamplingProfiler(period=701))
        session.step()
        snap = session.snapshot()
        assert sanitize.checks_run()["snapshot.canary"] == 1
        restored = SimulationSession.restore(
            snap,
            SyntheticStreams(
                {"A": (64 * 1024, 100)}, rounds=2, lines_per_round=1500, seed=3
            ),
        )
        assert sanitize.checks_run()["rng.replay"] >= 1
        while restored.step():
            pass
