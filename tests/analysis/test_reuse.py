"""Tests for reuse-distance analysis and miss-ratio curves."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.reuse import (
    COLD,
    ReuseProfile,
    miss_ratio_curve,
    reuse_distances,
)
from repro.datastructs import FenwickTree


def addrs_of_lines(line_numbers, line_size=64):
    return np.asarray(line_numbers, dtype=np.uint64) * np.uint64(line_size)


def naive_distances(lines):
    """Brute-force reference implementation."""
    out = []
    history: list[int] = []
    for line in lines:
        if line in history:
            pos = len(history) - 1 - history[::-1].index(line)
            out.append(len(set(history[pos + 1 :])))
            history.append(line)
        else:
            out.append(COLD)
            history.append(line)
    return out


class TestFenwick:
    """The shared tree the distance pass builds on (repro.datastructs)."""

    def test_prefix_sums(self):
        f = FenwickTree(10)
        f.add(3, 5)
        f.add(7, 2)
        assert f.prefix_sum(2) == 0
        assert f.prefix_sum(3) == 5
        assert f.prefix_sum(9) == 7
        assert f.range_sum(4, 9) == 2
        assert f.range_sum(5, 4) == 0
        assert f.total() == 7

    def test_negative_updates(self):
        f = FenwickTree(5)
        f.add(2, 3)
        f.add(2, -3)
        assert f.prefix_sum(4) == 0

    def test_bounds(self):
        with pytest.raises(IndexError):
            FenwickTree(4).add(4, 1)
        with pytest.raises(ValueError):
            FenwickTree(-1)


class TestReuseDistances:
    def test_cold_misses(self):
        d = reuse_distances(addrs_of_lines([0, 1, 2]))
        assert d.tolist() == [COLD, COLD, COLD]

    def test_immediate_reuse(self):
        d = reuse_distances(addrs_of_lines([5, 5, 5]))
        assert d.tolist() == [COLD, 0, 0]

    def test_classic_sequence(self):
        # a b c b a: b reused over {c}=1 distinct, a over {b,c}=2.
        d = reuse_distances(addrs_of_lines([10, 11, 12, 11, 10]))
        assert d.tolist() == [COLD, COLD, COLD, 1, 2]

    def test_same_line_different_offsets(self):
        d = reuse_distances(np.array([0, 8, 63], dtype=np.uint64))
        assert d.tolist() == [COLD, 0, 0]

    def test_duplicate_intervening_counts_once(self):
        # a b b a: only one distinct line between the a's.
        d = reuse_distances(addrs_of_lines([1, 2, 2, 1]))
        assert d[3] == 1

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 12), min_size=1, max_size=120))
    def test_matches_naive(self, lines):
        fast = reuse_distances(addrs_of_lines(lines)).tolist()
        assert fast == naive_distances(lines)


class TestReuseProfile:
    def test_histogram_and_cold(self):
        prof = ReuseProfile(reuse_distances(addrs_of_lines([0, 1, 0, 1, 0])))
        assert prof.cold_misses == 2
        assert prof.histogram[1] == 3  # three reuses at distance 1

    def test_miss_ratio_at(self):
        # Cyclic sweep of 4 lines: distance 3 for every reuse.
        stream = addrs_of_lines([0, 1, 2, 3] * 10)
        prof = ReuseProfile(reuse_distances(stream))
        # Cache of 4+ lines: only the 4 cold misses miss.
        assert prof.miss_ratio_at(4) == pytest.approx(4 / 40)
        # Cache of 3 lines: everything misses (LRU cyclic thrash).
        assert prof.miss_ratio_at(3) == 1.0

    def test_mean_distance(self):
        prof = ReuseProfile(reuse_distances(addrs_of_lines([0, 1, 0])))
        assert prof.mean_distance() == 1.0

    def test_empty(self):
        prof = ReuseProfile(reuse_distances(np.array([], dtype=np.uint64)))
        assert prof.miss_ratio_at(10) == 0.0
        assert prof.mean_distance() == 0.0


class TestMissRatioCurve:
    def test_monotone_nonincreasing(self):
        rng = np.random.default_rng(0)
        stream = addrs_of_lines(rng.integers(0, 600, 4000))
        sizes = [4 * 1024, 16 * 1024, 64 * 1024]
        curve = miss_ratio_curve(stream, sizes)
        ratios = [curve[s] for s in sizes]
        assert ratios == sorted(ratios, reverse=True)

    def test_predicts_fully_assoc_lru(self):
        """The curve must equal a simulated fully-associative LRU cache."""
        from repro.cache.config import CacheConfig
        from repro.cache.set_assoc import SetAssociativeCache

        rng = np.random.default_rng(1)
        stream = addrs_of_lines(rng.integers(0, 96, 3000))
        size = 4 * 1024  # 64 lines, fully associative below
        cfg = CacheConfig(size=size, line_size=64, assoc=64)
        cache = SetAssociativeCache(cfg)
        simulated = cache.access(stream).n_misses / len(stream)
        predicted = miss_ratio_curve(stream, [size])[size]
        assert predicted == pytest.approx(simulated, abs=1e-9)

    def test_huge_cache_leaves_cold_only(self):
        stream = addrs_of_lines([0, 1, 2, 0, 1, 2])
        curve = miss_ratio_curve(stream, [1 << 20])
        assert curve[1 << 20] == pytest.approx(0.5)
