"""Tests for the tuning advisor's pattern classification."""

import numpy as np

from repro.analysis.advisor import DiagnosisKind, advice_table, advise
from repro.analysis.conflicts import analyse_conflicts
from repro.cache.config import CacheConfig
from repro.core.profile import DataProfile, ObjectShare
from repro.memory.object_map import ObjectMap
from repro.memory.objects import MemoryObject

CFG = CacheConfig(size=16 * 1024, line_size=64, assoc=4)  # 256 lines


def build(layout):
    omap = ObjectMap()
    for name, base, size in layout:
        omap.add_global(MemoryObject(name, base=base, size=size))
    return omap


def profile_of(**shares):
    return DataProfile(
        source="t",
        shares=[ObjectShare(name=k, count=1, share=v) for k, v in shares.items()],
    )


class TestClassification:
    def test_streaming_object(self):
        """One pass over a large array: all first touches."""
        omap = build([("stream", 0x1000_0000, 1 << 20)])
        addrs = np.arange(0x1000_0000, 0x1000_0000 + (1 << 19), 64, dtype=np.uint64)
        out = advise(profile_of(stream=0.9), addrs, omap, CFG)
        assert out[0].kind is DiagnosisKind.STREAMING

    def test_thrashing_object(self):
        """Cyclic sweeps of 2x-cache working set: reuse beyond capacity."""
        omap = build([("thrash", 0x1000_0000, 1 << 20)])
        window = np.arange(
            0x1000_0000, 0x1000_0000 + 2 * CFG.size, 64, dtype=np.uint64
        )
        addrs = np.tile(window, 6)
        out = advise(profile_of(thrash=0.9), addrs, omap, CFG)
        assert out[0].kind is DiagnosisKind.THRASHING

    def test_conflicting_object(self):
        """In-capacity reuse but high set skew -> conflict diagnosis."""
        omap = build([("cf", 0x1000_0000, 1 << 20)])
        window = np.arange(0x1000_0000, 0x1000_0000 + 32 * 64, 64, dtype=np.uint64)
        addrs = np.tile(window, 20)
        # Fake a concentrated conflict report.
        report = analyse_conflicts(
            np.full(500, 0x1000_0000, dtype=np.uint64), omap, CFG
        )
        assert report.skew > 0.6
        out = advise(profile_of(cf=0.9), addrs, omap, CFG, conflict_report=report)
        assert out[0].kind is DiagnosisKind.CONFLICTING

    def test_minor_object_resident(self):
        omap = build([("tiny", 0x1000_0000, 4096)])
        addrs = np.arange(0x1000_0000, 0x1000_0000 + 4096, 64, dtype=np.uint64)
        out = advise(profile_of(tiny=0.01), addrs, omap, CFG)
        assert out[0].kind is DiagnosisKind.RESIDENT

    def test_unknown_objects_skipped(self):
        omap = build([("known", 0x1000_0000, 4096)])
        addrs = np.arange(0x1000_0000, 0x1000_0000 + 4096, 64, dtype=np.uint64)
        out = advise(profile_of(known=0.5, ghost=0.5), addrs, omap, CFG)
        assert [d.name for d in out] == ["known"]

    def test_remedies_exist(self):
        for kind in DiagnosisKind:
            from repro.analysis.advisor import _REMEDIES

            assert kind in _REMEDIES

    def test_table_renders(self):
        omap = build([("x", 0x1000_0000, 1 << 18)])
        addrs = np.arange(0x1000_0000, 0x1000_0000 + (1 << 18), 64, dtype=np.uint64)
        out = advise(profile_of(x=0.9), addrs, omap, CFG)
        text = advice_table(out)
        assert "tuning advice" in text
        assert "x" in text


class TestEndToEnd:
    def test_advises_on_real_workload(self):
        """Full loop: profile a workload, sample its stream, get advice."""
        from repro.cache import CacheConfig as CC
        from repro.sim.engine import Simulator
        from repro.workloads.synthetic import SyntheticStreams

        sim = Simulator(CC(size=64 * 1024, assoc=4), seed=3)
        wl = SyntheticStreams(
            {"big_stream": (1 << 20, 80), "side": (1 << 18, 20)},
            rounds=4,
            seed=3,
        )
        res = sim.run(wl)
        stream = np.concatenate(
            [b.addrs for b in SyntheticStreams(
                {"big_stream": (1 << 20, 80), "side": (1 << 18, 20)},
                rounds=1, seed=3,
            ).blocks()]
        )
        out = advise(res.actual, stream, wl.object_map, CC(size=64 * 1024, assoc=4))
        assert out
        assert out[0].name == "big_stream"
        assert out[0].kind in (DiagnosisKind.STREAMING, DiagnosisKind.THRASHING)
