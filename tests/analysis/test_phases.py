"""Tests for phase detection over miss time series."""

import pytest

from repro.analysis.phases import detect_phases, phase_profiles_differ, phase_table
from repro.cache.attribution import MissSeries


def series_from(rows):
    """rows: list of {name: count} per bucket."""
    series = MissSeries(bucket_cycles=1000)
    for bucket, row in enumerate(rows):
        for name, count in row.items():
            series.add(name, bucket, count)
    return series


class TestDetectPhases:
    def test_single_stable_phase(self):
        series = series_from([{"a": 100, "b": 50}] * 6)
        phases = detect_phases(series)
        assert len(phases) == 1
        assert phases[0].n_buckets == 6
        assert phases[0].shares["a"] == pytest.approx(2 / 3)

    def test_two_phase_split(self):
        rows = [{"a": 100}] * 4 + [{"b": 100}] * 4
        phases = detect_phases(series_from(rows))
        assert len(phases) == 2
        assert phases[0].top(1)[0][0] == "a"
        assert phases[1].top(1)[0][0] == "b"
        assert phases[0].end_bucket == 3
        assert phases[1].start_bucket == 4

    def test_gradual_drift_within_threshold(self):
        rows = [{"a": 100 - i, "b": i} for i in range(0, 30, 3)]
        phases = detect_phases(series_from(rows), threshold=0.5)
        assert len(phases) == 1  # drift never jumps past the threshold

    def test_idle_buckets_ignored(self):
        rows = [{"a": 100}, {}, {"a": 100}]
        phases = detect_phases(series_from(rows))
        assert len(phases) == 1

    def test_min_buckets_merges_flicker(self):
        rows = [{"a": 100}] * 4 + [{"b": 100}] + [{"a": 100}] * 4
        merged = detect_phases(series_from(rows), min_buckets=2)
        flickery = detect_phases(series_from(rows), min_buckets=1)
        assert len(merged) < len(flickery)

    def test_totals_conserved(self):
        rows = [{"a": 10, "b": 5}] * 3 + [{"c": 50}] * 3
        phases = detect_phases(series_from(rows))
        assert sum(p.total_misses for p in phases) == 3 * 15 + 3 * 50

    def test_empty_series(self):
        assert detect_phases(MissSeries(bucket_cycles=10)) in ([], None) or True
        # max_bucket defaults to 0 -> one empty bucket; no misses.
        phases = detect_phases(MissSeries(bucket_cycles=10))
        assert all(p.total_misses == 0 for p in phases)


class TestHelpers:
    def test_phase_profiles_differ(self):
        rows = [{"a": 100}] * 3 + [{"b": 100}] * 3
        phases = detect_phases(series_from(rows))
        assert phase_profiles_differ(phases)

    def test_uniform_profiles_do_not_differ(self):
        phases = detect_phases(series_from([{"a": 100}] * 6))
        assert not phase_profiles_differ(phases)

    def test_table_renders(self):
        phases = detect_phases(series_from([{"a": 100}] * 2))
        out = phase_table(phases)
        assert "detected phases" in out
        assert "a" in out


class TestOnApplu:
    def test_applu_phases_detected(self, quick_runner):
        """The Figure-5 series must segment into alternating jacobian/rhs
        phases with different dominant arrays."""
        base = quick_runner.baseline("applu")
        bucket = max(1, base.stats.app_cycles // 48)
        run = quick_runner.baseline("applu", series_bucket_cycles=bucket)
        phases = detect_phases(run.series, threshold=0.8, min_buckets=1)
        assert len(phases) >= 3  # the run alternates repeatedly
        assert phase_profiles_differ(phases)
        dominants = {p.top(1)[0][0] for p in phases if p.total_misses > 0}
        assert "rsd" in dominants or "d" in dominants
        assert any(d in dominants for d in ("a", "b", "c"))
