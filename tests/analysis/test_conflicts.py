"""Tests for cache-set conflict analysis."""

import numpy as np
import pytest

from repro.analysis.conflicts import _gini, analyse_conflicts
from repro.cache.config import CacheConfig
from repro.memory.object_map import ObjectMap
from repro.memory.objects import MemoryObject


def build_map(layout):
    omap = ObjectMap()
    for name, base, size in layout:
        omap.add_global(MemoryObject(name, base=base, size=size))
    return omap


CFG = CacheConfig(size=16 * 1024, line_size=64, assoc=1)  # 256 sets


class TestGini:
    def test_even_is_zero(self):
        assert _gini(np.full(100, 5)) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_is_high(self):
        counts = np.zeros(100, dtype=np.int64)
        counts[0] = 1000
        assert _gini(counts) > 0.9

    def test_empty(self):
        assert _gini(np.zeros(10, dtype=np.int64)) == 0.0


class TestAnalyseConflicts:
    def test_aligned_objects_conflict(self):
        """Two arrays whose bases are one cache-stride apart hit the same
        sets line-for-line: the analysis must pair them."""
        stride = CFG.n_sets * CFG.line_size  # 16 KiB: same set alignment
        layout = [
            ("A", 0x1000_0000, 4096),
            ("B", 0x1000_0000 + stride, 4096),
            ("far", 0x1000_0000 + 3 * stride + 2048, 4096),
        ]
        omap = build_map(layout)
        a = np.arange(0x1000_0000, 0x1000_0000 + 4096, 64, dtype=np.uint64)
        b = a + np.uint64(stride)
        far = np.arange(
            0x1000_0000 + 3 * stride + 2048,
            0x1000_0000 + 3 * stride + 2048 + 4096,
            64,
            dtype=np.uint64,
        )
        misses = np.concatenate([a, b, a, b, far])
        report = analyse_conflicts(misses, omap, CFG)
        top_pair = report.pairs[0]
        assert {top_pair[0], top_pair[1]} == {"A", "B"}
        assert top_pair[2] == 64  # 4096/64 shared sets

    def test_padding_suggested_for_conflicting_pair(self):
        stride = CFG.n_sets * CFG.line_size
        layout = [("A", 0x1000_0000, 4096), ("B", 0x1000_0000 + stride, 4096)]
        omap = build_map(layout)
        a = np.arange(0x1000_0000, 0x1000_0000 + 4096, 64, dtype=np.uint64)
        report = analyse_conflicts(
            np.concatenate([a, a + np.uint64(stride)]), omap, CFG
        )
        pad = report.padding.get("B") or report.padding.get("A")
        assert pad is not None
        assert pad % CFG.line_size == 0
        assert pad > 0

    def test_skew_reflects_concentration(self):
        layout = [("A", 0x1000_0000, 1 << 20)]
        omap = build_map(layout)
        # Concentrated: all misses in one set.
        one_set = np.full(500, 0x1000_0000, dtype=np.uint64)
        concentrated = analyse_conflicts(one_set, omap, CFG)
        # Spread: every set touched equally.
        spread_addrs = np.arange(
            0x1000_0000, 0x1000_0000 + CFG.n_sets * 64 * 4, 64, dtype=np.uint64
        )
        spread = analyse_conflicts(spread_addrs, omap, CFG)
        assert concentrated.skew > 0.9
        assert spread.skew < 0.1

    def test_disjoint_sets_no_pair(self):
        layout = [
            ("A", 0x1000_0000, 2048),            # sets 0-31
            ("B", 0x1000_0000 + 8192, 2048),     # sets 128-159
        ]
        omap = build_map(layout)
        a = np.arange(0x1000_0000, 0x1000_0000 + 2048, 64, dtype=np.uint64)
        b = np.arange(0x1000_0000 + 8192, 0x1000_0000 + 8192 + 2048, 64, dtype=np.uint64)
        report = analyse_conflicts(np.concatenate([a, b]), omap, CFG)
        assert report.pairs == []

    def test_table_renders(self):
        layout = [("A", 0x1000_0000, 4096)]
        omap = build_map(layout)
        addrs = np.arange(0x1000_0000, 0x1000_0000 + 4096, 64, dtype=np.uint64)
        report = analyse_conflicts(addrs, omap, CFG)
        assert "set-conflict pairs" in report.table()

    def test_pressure_sums_to_misses(self):
        layout = [("A", 0x1000_0000, 1 << 20)]
        omap = build_map(layout)
        rng = np.random.default_rng(2)
        addrs = (0x1000_0000 + rng.integers(0, 1 << 20, 900) // 64 * 64).astype(
            np.uint64
        )
        report = analyse_conflicts(addrs, omap, CFG)
        assert int(report.set_pressure.sum()) == 900
